"""Structural lint over elaborated :class:`~repro.rtl.design.Design` netlists.

Every check here is purely structural -- no simulation, no solving, no
unrolling.  The linter walks the next-state/output/assumption expression
graphs once and derives everything else from per-root support sets, so a
full pass costs about as much as :meth:`Design.free_variables`.

Check catalog
=============

``netlist.comb-cycle`` (error)
    The expression graph contains a cycle.  The public expression API only
    builds DAGs, but a cycle can be forged (``object.__setattr__``) or
    produced by a buggy transform -- and every downstream pass
    (:meth:`Design.structural_hash`, bit-blasting, the unroller) walks the
    graph expecting a DAG and would hang or overflow.  When a cycle is
    found, support-based checks are skipped (their answers would be
    meaningless) and the report carries this error alone.
``netlist.bad-width`` (error)
    An input or state element declares a non-positive width.
``netlist.reset-out-of-range`` (error)
    A state element's reset value is not representable in its width.
``netlist.multiply-driven`` (error)
    One name is declared both as a primary input and a state element, or
    twice as a state element -- two drivers for one net.
``netlist.dangling-driver`` (error)
    A next-state expression is registered under a name that is not a state
    element (a driver without a net).
``netlist.no-next-state`` (error)
    A state element has no next-state expression (a floating register).
``netlist.width-mismatch`` (error)
    A state element's next-state expression has a different width.
``netlist.undriven`` (error)
    An expression references a signal that is neither an input nor a state
    element (a floating net).
``netlist.dead-input`` (warning)
    A primary input no expression ever reads.
``netlist.dead-state`` (warning)
    A state element nothing but its own next-state function ever reads --
    a dead cone that only burns solver variables.

QED-readiness (run when the design carries ``qed.``-prefixed signals, i.e.
it is the composition produced by :class:`repro.qed.harness.SymbolicQED`):

``netlist.qed-isolation`` (error)
    A QED-module state element's next-state cone reads core (non-QED)
    signals.  The QED instruction duplicator must be independent of the
    design under test -- it observes only its own queue/count state and its
    own instruction-stream inputs, and drives the core through the declared
    injection wiring alone.  A duplicate transform that peeked at core
    state could mask exactly the bugs it exists to expose.
``netlist.qed-injection-unreachable`` (error)
    The property cone, closed under sequential state dependencies and
    assumption coupling, never reaches a QED instruction input -- the
    focus-set opcodes the environment constrains cannot influence the
    property window, so the check would trivially pass.  The closure mirrors
    the engine's cone-of-influence assumption deferral: an assumption whose
    support intersects the reached set couples everything else it mentions
    (that is how ``qed.instr`` reaches the core: through the
    ``qed_wiring_instruction`` equality).

Bug-library sanity (:func:`lint_bug_library`):

``netlist.buglib-undeclared-diff`` (error)
    A buggy version's netlist differs from its clean base (same feature
    configuration, no bugs injected) on a signal none of its declared bugs
    claims to touch (see :attr:`repro.uarch.bugs.Bug.signals`).
``netlist.buglib-no-diff`` (error)
    A version declares a bug whose injection changed nothing -- the seeded
    defect is silently absent, so campaign detection results for it would
    measure noise.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.findings import (
    ERROR,
    WARNING,
    DesignLintError,
    LintFinding,
    LintReport,
)
from repro.expr.bitvec import BV, BVVar
from repro.rtl.design import Design

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.isa.arch import ArchParams
    from repro.uarch.versions import DesignVersion

__all__ = [
    "CHECK_COMB_CYCLE",
    "CHECK_BAD_WIDTH",
    "CHECK_RESET_RANGE",
    "CHECK_MULTIPLY_DRIVEN",
    "CHECK_DANGLING_DRIVER",
    "CHECK_NO_NEXT_STATE",
    "CHECK_WIDTH_MISMATCH",
    "CHECK_UNDRIVEN",
    "CHECK_DEAD_INPUT",
    "CHECK_DEAD_STATE",
    "CHECK_QED_ISOLATION",
    "CHECK_QED_INJECTION",
    "CHECK_BUGLIB_UNDECLARED",
    "CHECK_BUGLIB_NO_DIFF",
    "QED_PREFIX",
    "check_design",
    "check_version_design",
    "clear_version_lint_memo",
    "expression_digest",
    "lint_bug_library",
    "lint_design",
    "lint_version_design",
]

CHECK_COMB_CYCLE = "netlist.comb-cycle"
CHECK_BAD_WIDTH = "netlist.bad-width"
CHECK_RESET_RANGE = "netlist.reset-out-of-range"
CHECK_MULTIPLY_DRIVEN = "netlist.multiply-driven"
CHECK_DANGLING_DRIVER = "netlist.dangling-driver"
CHECK_NO_NEXT_STATE = "netlist.no-next-state"
CHECK_WIDTH_MISMATCH = "netlist.width-mismatch"
CHECK_UNDRIVEN = "netlist.undriven"
CHECK_DEAD_INPUT = "netlist.dead-input"
CHECK_DEAD_STATE = "netlist.dead-state"
CHECK_QED_ISOLATION = "netlist.qed-isolation"
CHECK_QED_INJECTION = "netlist.qed-injection-unreachable"
CHECK_BUGLIB_UNDECLARED = "netlist.buglib-undeclared-diff"
CHECK_BUGLIB_NO_DIFF = "netlist.buglib-no-diff"

#: Signal-name prefix of the QED module added by the harness; its presence
#: switches the QED-readiness checks on.
QED_PREFIX = "qed."


# ----------------------------------------------------------------------
# Graph primitives (all cycle-safe: they terminate on forged cyclic graphs)
# ----------------------------------------------------------------------
def _find_cycle(roots: Iterable[Tuple[str, BV]]) -> Optional[Tuple[str, str]]:
    """Search the shared expression graph for a cycle.

    Returns ``(root_name, node_op)`` of the first back edge found, or
    ``None``.  Iterative DFS with grey (on stack) / black (finished)
    colouring over node identity; shared sub-DAGs are visited once.
    """
    finished: Set[int] = set()
    for root_name, root in roots:
        if id(root) in finished:
            continue
        on_stack: Set[int] = set()
        # Stack of (node, child_iterator); entering a node greys it.
        stack: List[Tuple[BV, Iterable[BV]]] = [(root, iter(root.children))]
        on_stack.add(id(root))
        while stack:
            node, children = stack[-1]
            child = next(children, None)
            if child is None:
                stack.pop()
                on_stack.discard(id(node))
                finished.add(id(node))
                continue
            if id(child) in on_stack:
                return root_name, child.op
            if id(child) not in finished:
                stack.append((child, iter(child.children)))
                on_stack.add(id(child))
    return None


def _support_of(expr: BV, memo: Dict[int, FrozenSet[str]]) -> FrozenSet[str]:
    """Variable support of *expr*, memoized per node across calls.

    Post-order iterative walk; the memo is shared between roots so the
    cost over a whole design is linear in the expression *graph*, not in
    the sum of the per-root trees.
    """
    cached = memo.get(id(expr))
    if cached is not None:
        return cached
    grey: Set[int] = set()
    stack: List[Tuple[BV, bool]] = [(expr, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in memo:
            continue
        if not expanded:
            if id(node) in grey:
                continue  # cycle back edge; terminate regardless
            grey.add(id(node))
            stack.append((node, True))
            stack.extend(
                (child, False)
                for child in node.children
                if id(child) not in memo
            )
            continue
        if isinstance(node, BVVar):
            memo[id(node)] = frozenset((node.name,))
        elif not node.children:
            memo[id(node)] = frozenset()
        else:
            support: Set[str] = set()
            for child in node.children:
                support |= memo.get(id(child), frozenset())
            memo[id(node)] = frozenset(support)
    return memo[id(expr)]


def expression_digest(expr: BV) -> str:
    """Canonical structural digest of one expression (cycle-safe).

    Two expressions digest equal iff they are structurally identical; used
    by :func:`lint_bug_library` to diff per-signal logic between a buggy
    version and its clean base.  Node identity keys the walk, so shared
    sub-DAGs serialize once and the digest is linear in the graph size.
    """
    import hashlib

    digest = hashlib.sha256()
    node_ids: Dict[int, int] = {}
    grey: Set[int] = set()
    stack: List[Tuple[BV, bool]] = [(expr, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in node_ids:
            continue
        if not expanded:
            if id(node) in grey:
                continue  # cycle back edge; terminate regardless
            grey.add(id(node))
            stack.append((node, True))
            stack.extend(
                (child, False)
                for child in node.children
                if id(child) not in node_ids
            )
            continue
        parts: List[str] = []
        for item in node._key():
            if isinstance(item, tuple):
                parts.append(
                    ",".join(
                        str(node_ids.get(id(child), -1)) for child in item
                    )
                )
            else:
                parts.append(str(item))
        node_ids[id(node)] = len(node_ids)
        digest.update(
            (f"n{len(node_ids) - 1}=" + "|".join(parts) + "\n").encode()
        )
    return digest.hexdigest()


# ----------------------------------------------------------------------
# The design linter
# ----------------------------------------------------------------------
def lint_design(
    design: Design,
    *,
    prop: Optional[BV] = None,
    qed_prefix: str = QED_PREFIX,
    dead_state_ok: Tuple[str, ...] = (),
) -> LintReport:
    """Run every structural check over *design*; never raises.

    ``prop`` is the 1-bit safety-property expression the engine will check
    (when known): it extends liveness analysis (a state element only the
    property reads is not dead) and enables the QED injection-reachability
    check.  ``qed_prefix`` identifies the QED module's signal namespace.
    ``dead_state_ok`` lists name prefixes of state elements that are
    *intentionally* write-only in some configurations (the core's
    ``hist_*`` monitoring block exists to give seeded bugs their trigger
    context, so clean versions never read parts of it); matching elements
    skip the dead-state warning.
    """
    report = LintReport(subject=design.name or "<design>")
    state_names = [element.name for element in design.state]
    known = set(design.inputs) | set(state_names)

    # -- declarations ---------------------------------------------------
    for input_name, width in design.inputs.items():
        if width <= 0:
            report.add(
                CHECK_BAD_WIDTH,
                input_name,
                f"input declares non-positive width {width}",
            )
    seen_state: Set[str] = set()
    for element in design.state:
        if element.width <= 0:
            report.add(
                CHECK_BAD_WIDTH,
                element.name,
                f"state element declares non-positive width {element.width}",
            )
        elif not 0 <= element.reset < (1 << element.width):
            report.add(
                CHECK_RESET_RANGE,
                element.name,
                f"reset value {element.reset} does not fit in "
                f"{element.width} bit(s)",
            )
        if element.name in seen_state:
            report.add(
                CHECK_MULTIPLY_DRIVEN,
                element.name,
                "state element declared twice",
            )
        seen_state.add(element.name)
        if element.name in design.inputs:
            report.add(
                CHECK_MULTIPLY_DRIVEN,
                element.name,
                "name declared both as primary input and state element",
            )
    for driver_name in design.next_state:
        if driver_name not in seen_state:
            report.add(
                CHECK_DANGLING_DRIVER,
                driver_name,
                "next-state expression for a name that is not a state element",
            )

    # -- cycle check ----------------------------------------------------
    roots: List[Tuple[str, BV]] = (
        [(f"next({n})", e) for n, e in design.next_state.items()]
        + [(f"output {n}", e) for n, e in design.outputs.items()]
        + [(f"assume {n}", e) for n, e in design.assumptions.items()]
    )
    if prop is not None:
        roots.append(("property", prop))
    cycle = _find_cycle(roots)
    if cycle is not None:
        root_name, node_op = cycle
        report.add(
            CHECK_COMB_CYCLE,
            root_name,
            f"combinational cycle through a {node_op!r} node; "
            "support-based checks skipped (the graph is not a DAG)",
        )
        return report

    # -- support-based checks -------------------------------------------
    memo: Dict[int, FrozenSet[str]] = {}
    support: Dict[str, FrozenSet[str]] = {
        name: _support_of(expr, memo) for name, expr in roots
    }
    # A property may read the design's *output* nets by name; the engine
    # substitutes the output expression there, so fold each referenced
    # output's own cone into the property support instead of flagging the
    # output name as an undriven net.
    if prop is not None:
        output_reads = {
            name for name in support["property"] if name in design.outputs
        }
        if output_reads:
            expanded = set(support["property"]) - output_reads
            for output_name in output_reads:
                expanded |= support[f"output {output_name}"]
            support["property"] = frozenset(expanded)
    used: Set[str] = set()
    for names in support.values():
        used |= names
    undriven = used - known
    for name in sorted(undriven):
        report.add(
            CHECK_UNDRIVEN,
            name,
            "referenced by expressions but neither an input nor a state "
            "element",
        )

    for element in design.state:
        expr = design.next_state.get(element.name)
        if expr is None:
            report.add(
                CHECK_NO_NEXT_STATE,
                element.name,
                "state element has no next-state expression",
            )
        elif expr.width != element.width:
            report.add(
                CHECK_WIDTH_MISMATCH,
                element.name,
                f"state element is {element.width} bit(s) wide but its "
                f"next-state expression is {expr.width}",
            )

    for input_name in design.inputs:
        if input_name not in used:
            report.add(
                CHECK_DEAD_INPUT,
                input_name,
                "primary input is never read",
                severity=WARNING,
            )
    # A state element is live when something *other than its own
    # next-state function* reads it: another element's next-state, an
    # output, an assumption, or the property.
    read_elsewhere: Set[str] = set()
    for name, names in support.items():
        for element_name in state_names:
            if name == f"next({element_name})":
                read_elsewhere |= names - {element_name}
                break
        else:
            read_elsewhere |= names
    for element in design.state:
        if element.name not in read_elsewhere and not element.name.startswith(
            dead_state_ok
        ):
            report.add(
                CHECK_DEAD_STATE,
                element.name,
                "state element feeds nothing but its own next-state cone",
                severity=WARNING,
            )

    # -- QED readiness --------------------------------------------------
    if any(name.startswith(qed_prefix) for name in known):
        _lint_qed_readiness(
            design, report, support, prop=prop, qed_prefix=qed_prefix
        )
    return report


def _lint_qed_readiness(
    design: Design,
    report: LintReport,
    support: Dict[str, FrozenSet[str]],
    *,
    prop: Optional[BV],
    qed_prefix: str,
) -> None:
    """The two QED-composition checks (see module docstring)."""
    # Isolation: the QED module observes nothing of the core.
    for element in design.state:
        if not element.name.startswith(qed_prefix):
            continue
        cone = support.get(f"next({element.name})", frozenset())
        foreign = {name for name in cone if not name.startswith(qed_prefix)}
        if foreign:
            report.add(
                CHECK_QED_ISOLATION,
                element.name,
                "QED-module state must not observe core signals, but its "
                "next-state cone reads: " + ", ".join(sorted(foreign)),
            )

    # Injection reachability: the property cone, closed under state
    # dependencies and assumption coupling, must include a QED input.
    if prop is None:
        return
    qed_inputs = {
        name for name in design.inputs if name.startswith(qed_prefix)
    }
    if not qed_inputs:
        report.add(
            CHECK_QED_INJECTION,
            "inputs",
            f"design carries {qed_prefix}* state but no {qed_prefix}* "
            "primary input to inject instructions through",
        )
        return
    assumption_support = [
        support[f"assume {name}"] for name in design.assumptions
    ]
    reached = set(support["property"])
    changed = True
    while changed:
        changed = False
        for element_name in sorted(reached):
            cone = support.get(f"next({element_name})")
            if cone is not None and not cone <= reached:
                reached |= cone
                changed = True
        for names in assumption_support:
            if names & reached and not names <= reached:
                reached |= names
                changed = True
    if not qed_inputs & reached:
        report.add(
            CHECK_QED_INJECTION,
            "property",
            "no QED instruction input reaches the property cone (closed "
            "under state dependencies and assumption coupling) -- the "
            "focus-set constraints cannot influence the check",
        )


def check_design(design: Design, *, prop: Optional[BV] = None) -> None:
    """Fail-fast precheck: raise :class:`DesignLintError` on any error."""
    report = lint_design(design, prop=prop)
    if not report.ok:
        raise DesignLintError(report)


# ----------------------------------------------------------------------
# Version-level lint (memoized; the campaign/serving precheck)
# ----------------------------------------------------------------------
_VERSION_MEMO: Dict[Tuple[str, object], LintReport] = {}


def lint_version_design(
    version: "DesignVersion", arch: Optional["ArchParams"] = None
) -> LintReport:
    """Lint the elaborated netlist of one design version (memoized).

    Elaboration costs ~100 ms, so results are memoized per
    ``(version name, arch)`` -- a campaign that checks the same version
    under four QED features pays for one build.  Tests that monkeypatch
    :func:`repro.uarch.designs.build_design` must call
    :func:`clear_version_lint_memo`.
    """
    from repro.isa.arch import TINY_PROFILE

    resolved_arch = arch if arch is not None else TINY_PROFILE
    key = (version.name, resolved_arch)
    report = _VERSION_MEMO.get(key)
    if report is None:
        from repro.uarch.designs import build_design

        report = lint_design(
            build_design(version, arch=resolved_arch),
            dead_state_ok=("hist_",),
        )
        _VERSION_MEMO[key] = report
    return report


def check_version_design(
    version: "DesignVersion", arch: Optional["ArchParams"] = None
) -> None:
    """Raise :class:`DesignLintError` when a version's netlist fails lint."""
    report = lint_version_design(version, arch)
    if not report.ok:
        raise DesignLintError(report)


def clear_version_lint_memo() -> None:
    """Drop memoized version reports (test isolation hook)."""
    _VERSION_MEMO.clear()


# ----------------------------------------------------------------------
# Bug-library sanity
# ----------------------------------------------------------------------
def _signal_digests(design: Design) -> Dict[str, str]:
    """Per-signal structural digests (next-state, outputs, assumptions)."""
    digests: Dict[str, str] = {}
    for section, exprs in (
        ("next", design.next_state),
        ("output", design.outputs),
        ("assume", design.assumptions),
    ):
        for name, expr in exprs.items():
            digests[f"{section}:{name}"] = expression_digest(expr)
    for element in design.state:
        digests[f"state:{element.name}"] = (
            f"{element.width}:{element.reset}"
        )
    for input_name, width in design.inputs.items():
        digests[f"input:{input_name}"] = str(width)
    return digests


def _design_diff(buggy: Design, clean: Design) -> List[str]:
    """Signals whose declaration or logic differs between two designs."""
    left = _signal_digests(buggy)
    right = _signal_digests(clean)
    return sorted(
        key
        for key in set(left) | set(right)
        if left.get(key) != right.get(key)
    )


def lint_bug_library(
    versions: Optional[Sequence["DesignVersion"]] = None,
    arch: Optional["ArchParams"] = None,
) -> LintReport:
    """Check that every version's netlist diff matches its declared bugs.

    For each buggy version the clean base is the *same* feature
    configuration with no bugs injected -- so the diff isolates exactly the
    bug injections, not the version-to-version feature changes.  Every
    differing signal must match a pattern some present bug declares
    (:attr:`repro.uarch.bugs.Bug.signals`), and every declared bug must
    actually change something.
    """
    from repro.uarch.bugs import bug_by_id
    from repro.uarch.core import build_core
    from repro.uarch.designs import build_design, config_for_version
    from repro.uarch.versions import ALL_VERSIONS

    from dataclasses import replace

    from repro.isa.arch import TINY_PROFILE

    resolved_arch = arch if arch is not None else TINY_PROFILE
    selected = list(versions) if versions is not None else list(ALL_VERSIONS)
    report = LintReport(subject="bug-library")
    for version in selected:
        if not version.bugs:
            continue
        config = config_for_version(version, arch=resolved_arch)
        buggy = build_design(version, arch=resolved_arch)
        clean = build_core(replace(config, bugs=frozenset()))
        diff = _design_diff(buggy, clean)
        declared: Dict[str, Tuple[str, ...]] = {
            bug_id: bug_by_id(bug_id).signals
            for bug_id in sorted(version.bugs)
        }
        patterns = [
            pattern
            for signal_patterns in declared.values()
            for pattern in signal_patterns
        ]
        undeclared = [
            signal
            for signal in diff
            if not any(
                fnmatchcase(signal.split(":", 1)[1], pattern)
                for pattern in patterns
            )
        ]
        if undeclared:
            report.add(
                CHECK_BUGLIB_UNDECLARED,
                version.name,
                "netlist differs from the clean base on signals no "
                "declared bug touches: " + ", ".join(undeclared),
            )
        for bug_id, signal_patterns in declared.items():
            if not signal_patterns:
                report.add(
                    CHECK_BUGLIB_NO_DIFF,
                    f"{version.name}:{bug_id}",
                    "bug declares no touched signals; the diff cannot be "
                    "attributed",
                )
                continue
            hit = any(
                fnmatchcase(signal.split(":", 1)[1], pattern)
                for signal in diff
                for pattern in signal_patterns
            )
            if not hit:
                report.add(
                    CHECK_BUGLIB_NO_DIFF,
                    f"{version.name}:{bug_id}",
                    "declared bug changed nothing in this version's "
                    "netlist (injection silently absent?)",
                )
    return report
