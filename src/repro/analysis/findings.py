"""Finding and report types shared by both analysis layers.

A lint pass produces a :class:`LintReport`: a subject (design name or file
path) plus a flat list of :class:`LintFinding` entries.  Findings carry a
stable check identifier (``netlist.comb-cycle``, ``code.set-order-escape``,
...) so callers can gate on specific checks, a severity (only ``error``
blocks; ``warning`` informs), and a human-readable location/message pair.

Reports serialize to JSON (:meth:`LintReport.to_json_dict`) -- that is the
wire form the serving layer returns when it rejects a job spec instead of
solving it -- and render to text (:meth:`LintReport.render`) for the CLI.

:class:`DesignLintError` is the fail-fast face of the same data: the BMC
engine and the campaign runner raise it (carrying the report) when a design
fails lint with errors, so no solver is ever built over a malformed netlist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class LintFinding:
    """One check hit at one location."""

    check: str      # stable identifier, e.g. "netlist.comb-cycle"
    severity: str   # ERROR or WARNING
    where: str      # signal name, "file:line", function name, ...
    message: str

    def __post_init__(self) -> None:
        if self.severity not in (ERROR, WARNING):
            raise ValueError(f"unknown severity {self.severity!r}")

    def to_json_dict(self) -> Dict[str, str]:
        return {
            "check": self.check,
            "severity": self.severity,
            "where": self.where,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.severity}: {self.check}: {self.where}: {self.message}"


@dataclass
class LintReport:
    """All findings of one lint pass over one subject."""

    subject: str
    findings: List[LintFinding] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add(
        self, check: str, where: str, message: str, *, severity: str = ERROR
    ) -> None:
        self.findings.append(LintFinding(check, severity, where, message))

    def extend(self, other: "LintReport") -> None:
        """Fold another report's findings into this one."""
        self.findings.extend(other.findings)

    # ------------------------------------------------------------------
    @property
    def errors(self) -> List[LintFinding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> List[LintFinding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True iff the subject is clean enough to proceed (no errors)."""
        return not self.errors

    def by_check(self, check: str) -> List[LintFinding]:
        return [f for f in self.findings if f.check == check]

    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [f.to_json_dict() for f in self.findings],
        }

    def render(self) -> str:
        lines = [
            f"{self.subject}: "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        ]
        lines.extend("  " + f.render() for f in self.findings)
        return "\n".join(lines)


class DesignLintError(ValueError):
    """A design failed structural lint; carries the full report.

    Raised by the engine/campaign/serving prechecks *before* any unrolling,
    CNF generation or solving happens -- a malformed netlist (for example a
    forged combinational cycle) would otherwise hang structural hashing and
    bit-blasting, which both walk the expression graph expecting a DAG.
    """

    def __init__(self, report: LintReport) -> None:
        self.report = report
        first = report.errors[0] if report.errors else None
        detail = f": {first.render()}" if first is not None else ""
        super().__init__(
            f"design {report.subject!r} failed lint with "
            f"{len(report.errors)} error(s){detail}"
        )


ReportLike = Union[LintReport, Dict[str, object]]
