"""AST-based code analyzers guarding the repo's behavioural invariants.

Three analyzers, stdlib :mod:`ast` only (no third-party dependencies):

Determinism lint
================
``code.set-order-escape`` (error)
    Iteration order of a ``set``/``frozenset`` escapes into an ordered
    artifact: ``list(s)``/``tuple(s)``, ``sep.join(s)``, a list
    comprehension over a set, or a loop over a set that appends to a list
    (that is never subsequently sorted) or ``yield``\\ s.  Set iteration
    order depends on insertion history and -- for strings -- on the
    per-process hash seed, so such an escape breaks the repo's
    worker-count-independence and byte-identical-records guarantees the
    moment the artifact reaches a report, a JSON record, or a cache key.
    Wrapping the iteration in ``sorted(...)`` (or consuming it with an
    order-insensitive reducer: ``sum``/``min``/``max``/``len``/``any``/
    ``all``/``set``/``frozenset``) is the fix and silences the check.
``code.set-pop`` (error)
    Zero-argument ``.pop()`` on a set: which element comes out is
    arbitrary.  (``list.pop()`` is positional and fine.)

Fork-safety lint
================
``code.fork-unsafe`` (error)
    A lock or asyncio primitive is statically reachable from a fork-pool
    worker entry point.  With the ``fork`` start method a child inherits a
    snapshot of the parent's locks and event loops: a lock held by another
    parent thread at fork time deadlocks the child forever, and an
    inherited event loop must never be touched from the child.  Entry
    points are found automatically (``Process(target=...)``,
    ``pool.submit(f, ...)``, ``pool.map(f, ...)``,
    ``initializer=...``) or declared with a ``# fork-entry`` comment on
    the ``def`` line (for entries passed indirectly, e.g. through a
    ``functools.partial`` the analyzer cannot see).  Reachability follows
    direct calls, ``from``-imports within the analyzed file set,
    ``module.function`` references, ``ClassName(...)`` constructors and
    ``self.method()`` calls; dynamic dispatch is out of scope by design --
    keep worker code boring.

Hot-loop lint
=============
``code.hot-loop-attr`` / ``code.hot-loop-alloc`` / ``code.hot-loop-try``
    (error) A loop marked ``# hot-loop`` (comment on the ``for``/``while``
    line or the line above) must stay object-free, the discipline that
    bought the flat-arena solver its propagation throughput: no ``self.*``
    access (hoist to locals before the loop), no data-attribute lookups
    (method calls on locals, e.g. ``trail.append(...)``, are allowed --
    bound-method dispatch is unavoidable), no list/dict/set displays,
    comprehensions, f-strings, lambdas or calls to
    ``list``/``dict``/``set``/``frozenset``/``sorted``, and no
    ``try``/``except`` (zero-cost only until it isn't).  Constant-size
    tuple displays are permitted (CPython free-lists them; heap entries
    need them), as are ``range``/``len``/``enumerate`` and slice reads
    (the arena's deliberate one-C-level-copy idiom).  A statement line
    marked ``# hot-loop: cold`` is exempt (rare rescale branches).

Suppressions
============
Any finding can be waived on its line with ``# lint: ok(<check-id>)``
(comma-separated ids, or no parenthesis to waive every check on the line).
Use sparingly and leave a reason nearby; the CLI counts suppressions.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import LintFinding, LintReport

__all__ = [
    "CHECK_SET_ORDER",
    "CHECK_SET_POP",
    "CHECK_FORK_UNSAFE",
    "CHECK_HOT_ATTR",
    "CHECK_HOT_ALLOC",
    "CHECK_HOT_TRY",
    "lint_file",
    "lint_files",
    "lint_fork_safety",
]

CHECK_SET_ORDER = "code.set-order-escape"
CHECK_SET_POP = "code.set-pop"
CHECK_FORK_UNSAFE = "code.fork-unsafe"
CHECK_HOT_ATTR = "code.hot-loop-attr"
CHECK_HOT_ALLOC = "code.hot-loop-alloc"
CHECK_HOT_TRY = "code.hot-loop-try"

#: Builtins whose result does not depend on the argument's iteration order.
_ORDER_INSENSITIVE = {
    "sorted", "sum", "min", "max", "len", "any", "all", "set", "frozenset",
}
#: Type names (bare or subscripted) that annotate a set-valued name.
_SET_ANNOTATIONS = {
    "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet",
}
#: Set methods returning another set.
_SET_RETURNING_METHODS = {
    "union", "intersection", "difference", "symmetric_difference", "copy",
}
#: Allocation-free builtins allowed inside hot loops.
_HOT_ALLOWED_CALLS = {"range", "len", "enumerate", "abs", "id"}
#: Calls that allocate containers (flagged inside hot loops).
_HOT_ALLOC_CALLS = {
    "list", "dict", "set", "frozenset", "sorted", "tuple", "bytearray",
    "deque", "defaultdict",
}
#: threading primitives whose construction inside a fork worker is unsafe.
_THREADING_PRIMITIVES = {
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Barrier", "Event",
}

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ok(?:\(([^)]*)\))?")
_HOT_RE = re.compile(r"#\s*hot-loop\s*(?:$|[^:])")
_COLD_RE = re.compile(r"#\s*hot-loop:\s*cold\b")
_FORK_ENTRY_RE = re.compile(r"#\s*fork-entry\b")


# ----------------------------------------------------------------------
# Shared per-file context
# ----------------------------------------------------------------------
class _FileContext:
    """One parsed source file plus its comment-derived line markers."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.tree = ast.parse(text, filename=path)
        self.lines = text.splitlines()
        #: line number -> set of suppressed check ids (empty set = all).
        self.suppressed: Dict[int, Set[str]] = {}
        self.hot_marker_lines: Set[int] = set()
        self.cold_lines: Set[int] = set()
        self.fork_entry_lines: Set[int] = set()
        for lineno, line in enumerate(self.lines, start=1):
            if "#" not in line:
                continue
            match = _SUPPRESS_RE.search(line)
            if match:
                ids = match.group(1)
                self.suppressed[lineno] = (
                    {part.strip() for part in ids.split(",") if part.strip()}
                    if ids
                    else set()
                )
            if _COLD_RE.search(line):
                self.cold_lines.add(lineno)
            elif _HOT_RE.search(line):
                self.hot_marker_lines.add(lineno)
            if _FORK_ENTRY_RE.search(line):
                self.fork_entry_lines.add(lineno)

    def is_suppressed(self, check: str, lineno: int) -> bool:
        ids = self.suppressed.get(lineno)
        return ids is not None and (not ids or check in ids)

    def add(
        self, report: LintReport, check: str, lineno: int, message: str
    ) -> None:
        if not self.is_suppressed(check, lineno):
            report.add(check, f"{self.path}:{lineno}", message)


# ----------------------------------------------------------------------
# Determinism lint
# ----------------------------------------------------------------------
def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    return isinstance(node, ast.Name) and node.id in _SET_ANNOTATIONS


class _SetTracker:
    """Which local names are set-valued in one scope (flow-insensitive).

    A name counts as a set iff it has at least one set-producing binding
    and *no* binding that is visibly something else -- conservative in the
    false-positive direction: one non-set rebinding (``x = sorted(x)``)
    drops the name.
    """

    def __init__(self, scope: ast.AST) -> None:
        annotated: Set[str] = set()
        hard_disqualified: Set[str] = set()

        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            arguments = scope.args
            for arg in (
                list(arguments.posonlyargs)
                + list(arguments.args)
                + list(arguments.kwonlyargs)
            ):
                if _annotation_is_set(arg.annotation):
                    annotated.add(arg.arg)

        bindings: List[Tuple[str, Optional[ast.expr], bool]] = []
        for node in _scope_walk(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bindings.append((target.id, node.value, False))
                    else:
                        for name_node in ast.walk(target):
                            if isinstance(name_node, ast.Name):
                                bindings.append((name_node.id, None, False))
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    if _annotation_is_set(node.annotation):
                        annotated.add(node.target.id)
                    elif node.annotation is not None:
                        hard_disqualified.add(node.target.id)
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    bindings.append((node.target.id, None, True))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for name_node in ast.walk(node.target):
                    if isinstance(name_node, ast.Name):
                        hard_disqualified.add(name_node.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        hard_disqualified.add(item.optional_vars.id)

        # Iterate to a fixpoint (recomputing the verdicts each round) so a
        # chain like ``a = set(); b = a | c`` resolves regardless of how
        # the first round's empty environment judged it, while one visibly
        # non-set rebinding (``s = sorted(s)``) still disqualifies.
        env: Set[str] = set()
        for _ in range(len(bindings) + 2):
            candidates = set(annotated)
            disqualified = set(hard_disqualified)
            for name, value, is_aug in bindings:
                if value is None:
                    if not is_aug:  # tuple unpacking etc: unknown
                        disqualified.add(name)
                    continue
                if _is_set_expr(value, env):
                    candidates.add(name)
                else:
                    disqualified.add(name)
            new_env = candidates - disqualified
            if new_env == env:
                break
            env = new_env
        self.names = env


def _scope_walk(scope: ast.AST) -> Iterable[ast.AST]:
    """Walk *scope* without descending into nested function/class scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
    """Syntactic judgement: does *node* evaluate to a set/frozenset?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_RETURNING_METHODS
            and _is_set_expr(func.value, set_names)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


def _first_generator_iter(node: ast.expr) -> Optional[ast.expr]:
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        return node.generators[0].iter
    return None


class _DeterminismVisitor(ast.NodeVisitor):
    """Flag set-iteration order escaping into ordered artifacts."""

    def __init__(self, context: _FileContext, report: LintReport) -> None:
        self.context = context
        self.report = report
        self._scopes: List[_SetTracker] = [_SetTracker(context.tree)]
        self._sanitized = 0

    # -- scope management ----------------------------------------------
    def _set_names(self) -> Set[str]:
        return self._scopes[-1].names

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scopes.append(_SetTracker(node))
        self.generic_visit(node)
        self._scopes.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- sinks -----------------------------------------------------------
    def _unordered(self, node: ast.expr) -> bool:
        return _is_set_expr(node, self._set_names())

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        sanitizing = (
            isinstance(func, ast.Name) and func.id in _ORDER_INSENSITIVE
        )
        if not sanitizing and self._sanitized == 0 and node.args:
            if isinstance(func, ast.Name) and func.id in ("list", "tuple"):
                if self._unordered(node.args[0]):
                    self.context.add(
                        self.report,
                        CHECK_SET_ORDER,
                        node.lineno,
                        f"{func.id}() materializes set iteration order; "
                        "wrap the set in sorted(...)",
                    )
            elif isinstance(func, ast.Attribute) and func.attr == "join":
                arg = node.args[0]
                inner = _first_generator_iter(arg)
                if self._unordered(arg) or (
                    inner is not None and self._unordered(inner)
                ):
                    self.context.add(
                        self.report,
                        CHECK_SET_ORDER,
                        node.lineno,
                        "join() over set iteration order; sort first",
                    )
        if (
            self._sanitized == 0
            and isinstance(func, ast.Attribute)
            and func.attr == "pop"
            and not node.args
            and isinstance(func.value, ast.Name)
            and func.value.id in self._set_names()
        ):
            self.context.add(
                self.report,
                CHECK_SET_POP,
                node.lineno,
                f"set.pop() on {func.value.id!r} removes an arbitrary "
                "element",
            )
        if sanitizing:
            self._sanitized += 1
            self.generic_visit(node)
            self._sanitized -= 1
        else:
            self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        if self._sanitized == 0 and self._unordered(node.generators[0].iter):
            self.context.add(
                self.report,
                CHECK_SET_ORDER,
                node.lineno,
                "list comprehension materializes set iteration order; "
                "iterate sorted(...)",
            )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self._sanitized == 0 and self._unordered(node.iter):
            sink = self._ordered_sink_in(node.body)
            if sink is not None:
                self.context.add(
                    self.report,
                    CHECK_SET_ORDER,
                    node.lineno,
                    f"loop over a set {sink}; iterate sorted(...) or make "
                    "the consumer order-insensitive",
                )
        self.generic_visit(node)

    def _ordered_sink_in(self, body: Sequence[ast.stmt]) -> Optional[str]:
        """Does this loop body leak iteration order into an ordered value?"""
        sorted_names = self._names_sorted_in_scope()
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    return "yields in iteration order"
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("append", "extend", "insert")
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id not in sorted_names
                ):
                    return (
                        f"appends to {node.func.value.id!r} in iteration "
                        "order (never sorted afterwards)"
                    )
        return None

    def _names_sorted_in_scope(self) -> Set[str]:
        """Names that get sorted somewhere in the file (see lint_file)."""
        return self._sorted_names_cache

    # populated by lint_file before visiting
    _sorted_names_cache: Set[str] = set()


def _collect_sorted_names(scope: ast.AST) -> Set[str]:
    """Names ``X`` with ``X.sort()`` or ``sorted(X ...)`` in *scope*."""
    names: Set[str] = set()
    for node in _scope_walk(scope):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "sort"
                and isinstance(func.value, ast.Name)
            ):
                names.add(func.value.id)
            elif (
                isinstance(func, ast.Name)
                and func.id == "sorted"
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                names.add(node.args[0].id)
    return names


# ----------------------------------------------------------------------
# Hot-loop lint
# ----------------------------------------------------------------------
class _HotLoopChecker:
    def __init__(self, context: _FileContext, report: LintReport) -> None:
        self.context = context
        self.report = report

    def run(self) -> None:
        if not self.context.hot_marker_lines:
            return
        for node in ast.walk(self.context.tree):
            if isinstance(node, (ast.For, ast.While)) and (
                node.lineno in self.context.hot_marker_lines
                or node.lineno - 1 in self.context.hot_marker_lines
            ):
                for stmt in node.body + getattr(node, "orelse", []):
                    self._check_stmt(stmt)

    # ------------------------------------------------------------------
    def _is_cold(self, node: ast.stmt) -> bool:
        return node.lineno in self.context.cold_lines

    def _check_stmt(self, stmt: ast.stmt) -> None:
        if self._is_cold(stmt):
            return
        if isinstance(stmt, ast.Try):
            self.context.add(
                self.report,
                CHECK_HOT_TRY,
                stmt.lineno,
                "try/except inside a hot loop; hoist it outside the marked "
                "region",
            )
            return
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            self.context.add(
                self.report,
                CHECK_HOT_ALLOC,
                stmt.lineno,
                "definition inside a hot loop allocates per iteration",
            )
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._check_stmt(child)
            elif isinstance(child, ast.expr):
                self._check_expr(child, call_func=False)
            elif isinstance(child, (ast.withitem, ast.excepthandler)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.stmt):
                        self._check_stmt(sub)
                    elif isinstance(sub, ast.expr):
                        self._check_expr(sub, call_func=False)

    def _check_expr(self, node: ast.expr, *, call_func: bool) -> None:
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                self.context.add(
                    self.report,
                    CHECK_HOT_ATTR,
                    node.lineno,
                    f"self.{node.attr} inside a hot loop; hoist to a local "
                    "before the loop",
                )
            elif not call_func:
                self.context.add(
                    self.report,
                    CHECK_HOT_ATTR,
                    node.lineno,
                    f"attribute lookup .{node.attr} inside a hot loop; "
                    "hoist to a local before the loop",
                )
            self._check_expr(node.value, call_func=False)
            return
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            if not isinstance(getattr(node, "ctx", ast.Load()), ast.Store):
                self.context.add(
                    self.report,
                    CHECK_HOT_ALLOC,
                    node.lineno,
                    "container display allocates inside a hot loop",
                )
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            self.context.add(
                self.report,
                CHECK_HOT_ALLOC,
                node.lineno,
                "comprehension allocates inside a hot loop",
            )
        elif isinstance(node, (ast.JoinedStr, ast.Lambda)):
            self.context.add(
                self.report,
                CHECK_HOT_ALLOC,
                node.lineno,
                "f-string/lambda allocates inside a hot loop",
            )
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _HOT_ALLOC_CALLS:
                self.context.add(
                    self.report,
                    CHECK_HOT_ALLOC,
                    node.lineno,
                    f"{func.id}() allocates inside a hot loop",
                )
            self._check_expr(func, call_func=True)
            for arg in node.args:
                self._check_expr(arg, call_func=False)
            for keyword in node.keywords:
                self._check_expr(keyword.value, call_func=False)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._check_expr(child, call_func=False)
            elif isinstance(child, ast.comprehension):
                self._check_expr(child.iter, call_func=False)
                for condition in child.ifs:
                    self._check_expr(condition, call_func=False)


# ----------------------------------------------------------------------
# Per-file entry points
# ----------------------------------------------------------------------
def lint_file(path: str, *, text: Optional[str] = None) -> LintReport:
    """Determinism + hot-loop lint over one source file."""
    if text is None:
        with open(path, "r", encoding="utf-8") as stream:
            text = stream.read()
    report = LintReport(subject=path)
    try:
        context = _FileContext(path, text)
    except SyntaxError as exc:
        report.add("code.syntax", f"{path}:{exc.lineno}", str(exc.msg))
        return report

    visitor = _DeterminismVisitor(context, report)
    # Pre-compute, per scope, the names that get sorted -- the visitor
    # treats appends to them as sanitized.
    scopes = [context.tree] + [
        node
        for node in ast.walk(context.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    sorted_names: Set[str] = set()
    for scope in scopes:
        sorted_names |= _collect_sorted_names(scope)
    visitor._sorted_names_cache = sorted_names
    visitor.visit(context.tree)

    _HotLoopChecker(context, report).run()
    return report


def lint_files(paths: Sequence[str]) -> LintReport:
    """Determinism + hot-loop lint over many files, one merged report."""
    merged = LintReport(subject="code")
    for path in paths:
        merged.extend(lint_file(path))
    return merged


# ----------------------------------------------------------------------
# Fork-safety lint
# ----------------------------------------------------------------------
class _ModuleInfo:
    def __init__(self, path: str, context: _FileContext) -> None:
        self.path = path
        self.context = context
        self.module_name = _module_name_of(path)
        self.functions: Dict[str, ast.AST] = {}
        self.classes: Dict[str, Dict[str, ast.AST]] = {}
        self.imports: Dict[str, str] = {}
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        for node in ast.iter_child_nodes(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                methods: Dict[str, ast.AST] = {}
                for sub in ast.iter_child_nodes(node):
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        methods[sub.name] = sub
                self.classes[node.name] = methods
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )


def _module_name_of(path: str) -> str:
    normalized = path.replace("\\", "/")
    marker = "src/repro/"
    index = normalized.rfind(marker)
    if index >= 0:
        dotted = normalized[index + len("src/") :]
        dotted = dotted[: -3] if dotted.endswith(".py") else dotted
        return dotted.rstrip("/").replace("/", ".").removesuffix(".__init__")
    stem = normalized.rsplit("/", 1)[-1]
    return stem[:-3] if stem.endswith(".py") else stem


def _detect_entries(info: _ModuleInfo) -> List[Tuple[str, ast.AST]]:
    """Fork-pool entry points defined in this module."""
    entries: List[Tuple[str, ast.AST]] = []
    referenced: Set[str] = set()
    for node in ast.walk(info.context.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "submit", "map", "apply_async",
        ):
            if node.args and isinstance(node.args[0], ast.Name):
                referenced.add(node.args[0].id)
        for keyword in node.keywords:
            if keyword.arg in ("target", "initializer") and isinstance(
                keyword.value, ast.Name
            ):
                referenced.add(keyword.value.id)
    for name in sorted(referenced):
        node = info.functions.get(name)
        if node is not None:
            entries.append((name, node))
    for name, node in info.functions.items():
        if (
            node.lineno in info.context.fork_entry_lines
            or node.lineno - 1 in info.context.fork_entry_lines
        ) and all(existing is not node for _, existing in entries):
            entries.append((name, node))
    return entries


def lint_fork_safety(
    paths: Sequence[str], *, texts: Optional[Dict[str, str]] = None
) -> LintReport:
    """Fork-safety lint over a file set (see module docstring)."""
    report = LintReport(subject="fork-safety")
    modules: List[_ModuleInfo] = []
    for path in paths:
        if texts is not None and path in texts:
            text = texts[path]
        else:
            with open(path, "r", encoding="utf-8") as stream:
                text = stream.read()
        try:
            modules.append(_ModuleInfo(path, _FileContext(path, text)))
        except SyntaxError as exc:
            report.add("code.syntax", f"{path}:{exc.lineno}", str(exc.msg))
    by_name: Dict[str, _ModuleInfo] = {}
    for info in modules:
        by_name[info.module_name] = info
        by_name.setdefault(info.module_name.rsplit(".", 1)[-1], info)

    # Seed the worklist with every detected entry point.
    worklist: List[Tuple[_ModuleInfo, str, ast.AST, str]] = []
    seen: Set[Tuple[str, str]] = set()
    for info in modules:
        for name, node in _detect_entries(info):
            key = (info.module_name, name)
            if key not in seen:
                seen.add(key)
                worklist.append((info, name, node, name))

    while worklist:
        info, qualname, node, entry = worklist.pop()
        _scan_worker_function(info, node, entry, report)
        for callee_info, callee_qualname, callee_node in _callees_of(
            info, qualname, node, by_name
        ):
            key = (callee_info.module_name, callee_qualname)
            if key not in seen:
                seen.add(key)
                worklist.append((callee_info, callee_qualname, callee_node, entry))
    return report


def _callees_of(
    info: _ModuleInfo,
    qualname: str,
    node: ast.AST,
    by_name: Dict[str, _ModuleInfo],
) -> List[Tuple[_ModuleInfo, str, ast.AST]]:
    """Resolvable static call edges out of one function."""
    enclosing_class = qualname.split(".", 1)[0] if "." in qualname else None
    callees: List[Tuple[_ModuleInfo, str, ast.AST]] = []

    def resolve_name(name: str) -> None:
        if name in info.functions:
            callees.append((info, name, info.functions[name]))
            return
        if name in info.classes:
            init = info.classes[name].get("__init__")
            if init is not None:
                callees.append((info, f"{name}.__init__", init))
            return
        imported = info.from_imports.get(name)
        if imported is not None:
            module_name, attr = imported
            target = by_name.get(module_name) or by_name.get(
                module_name.rsplit(".", 1)[-1]
            )
            if target is not None:
                if attr in target.functions:
                    callees.append((target, attr, target.functions[attr]))
                elif attr in target.classes:
                    init = target.classes[attr].get("__init__")
                    if init is not None:
                        callees.append(
                            (target, f"{attr}.__init__", init)
                        )

    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if isinstance(func, ast.Name):
            resolve_name(func.id)
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            owner = func.value.id
            if owner == "self" and enclosing_class is not None:
                methods = info.classes.get(enclosing_class, {})
                method = methods.get(func.attr)
                if method is not None:
                    callees.append(
                        (info, f"{enclosing_class}.{func.attr}", method)
                    )
                continue
            if owner in info.classes:
                method = info.classes[owner].get(func.attr)
                if method is not None:
                    callees.append((info, f"{owner}.{func.attr}", method))
                continue
            imported_class = info.from_imports.get(owner)
            if imported_class is not None:
                module_name, attr = imported_class
                target = by_name.get(module_name) or by_name.get(
                    module_name.rsplit(".", 1)[-1]
                )
                if target is not None and attr in target.classes:
                    method = target.classes[attr].get(func.attr)
                    if method is not None:
                        callees.append(
                            (target, f"{attr}.{func.attr}", method)
                        )
                continue
            module_alias = info.imports.get(owner)
            if module_alias is not None:
                target = by_name.get(module_alias) or by_name.get(
                    module_alias.rsplit(".", 1)[-1]
                )
                if target is not None and func.attr in target.functions:
                    callees.append(
                        (target, func.attr, target.functions[func.attr])
                    )
    return callees


def _scan_worker_function(
    info: _ModuleInfo, node: ast.AST, entry: str, report: LintReport
) -> None:
    """Flag lock/asyncio usage inside one fork-reachable function."""
    context = info.context

    def flag(lineno: int, what: str) -> None:
        context.add(
            report,
            CHECK_FORK_UNSAFE,
            lineno,
            f"{what} is reachable from fork-pool entry point {entry!r}; "
            "locks/event loops inherited across fork() deadlock or misfire "
            "in the child",
        )

    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and isinstance(sub.value, ast.Name):
            owner_module = info.imports.get(sub.value.id)
            if owner_module == "asyncio":
                flag(sub.lineno, f"asyncio.{sub.attr}")
            elif (
                owner_module == "threading"
                and sub.attr in _THREADING_PRIMITIVES
            ):
                flag(sub.lineno, f"threading.{sub.attr}")
        elif isinstance(sub, ast.Name):
            imported = info.from_imports.get(sub.id)
            if imported is None:
                continue
            module_name, attr = imported
            if module_name == "asyncio" or module_name.startswith("asyncio."):
                flag(sub.lineno, f"asyncio.{attr}")
            elif module_name == "threading" and attr in _THREADING_PRIMITIVES:
                flag(sub.lineno, f"threading.{attr}")
