"""repro -- Symbolic QED pre-silicon verification, reproduced end-to-end.

This package reproduces the system described in *"Symbolic QED Pre-silicon
Verification for Automotive Microcontroller Cores: Industrial Case Study"*
(Singh et al., DATE 2019).  It contains every substrate the case study relies
on, built from scratch in Python:

* :mod:`repro.sat` -- a CDCL SAT solver.
* :mod:`repro.expr` -- bit-vector expressions, AIG, bit-blasting, CNF.
* :mod:`repro.rtl` -- RTL modelling, elaboration and simulation.
* :mod:`repro.bmc` -- the bounded model checking engine.
* :mod:`repro.isa` -- the custom microcontroller ISA (52+ instructions).
* :mod:`repro.uarch` -- the 2-stage pipelined microcontroller cores
  (Designs A, B, C; 16 versions with seeded logic/spec bugs).
* :mod:`repro.qed` -- the paper's contribution: the QED module, Enhanced
  EDDI-V (control-flow and memory duplication), Single-I properties, and the
  end-to-end Symbolic QED harness.
* :mod:`repro.indverif` -- the industrial verification flow baselines
  (directed simulation tests, OCS-FV, constrained-random simulation).
* :mod:`repro.eval` -- the evaluation campaign, effort model and the
  table/figure reproduction harness.

Quick start::

    from repro.uarch import build_design
    from repro.qed import SymbolicQED

    design = build_design("A", version=3)
    qed = SymbolicQED(design)
    result = qed.check()
    if result.found_violation:
        print(result.counterexample_report())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
