"""Chaos scenarios at the fleet's network boundary.

Three failure schedules the multi-host protocol must absorb without ever
changing *what* a definitive verdict says:

* a remote worker SIGKILLed mid-solve -- lease expiry reassigns the job
  and the recovered record is byte-identical to a direct run;
* a paused-then-resumed zombie whose (correct!) commit arrives after
  reassignment -- the fence comparison rejects it, nothing is recorded
  twice;
* a torn cache-log tail crossing the replication stream -- the follower
  replays around it and later entries still serve.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro import faults
from repro.serve import LocalServer, ServeClient
from repro.serve.fleet import CacheFollower, FleetWorker
from repro.serve.queue import _selftest_entry

from chaos_helpers import make_spec as spec

CHAOS_BUG = "wrport_collision"  # EDDI-V interaction bug, ~2 s solve


def _worker_process_main(url: str, worker_id: str) -> None:
    """Child-process body: a thread-mode worker running the REAL entry.

    Thread mode inside a dedicated OS process: SIGKILLing the process
    takes the solve down with it -- no goodbye, no deregister, exactly
    the failure the lease clock exists for.
    """
    FleetWorker(
        url, worker_id=worker_id, use_processes=False, poll_seconds=0.05
    ).run()


def _wait_for_lease(client: ServeClient, worker_id: str, timeout: float = 60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        table = client.fleet().get("workers_table", [])
        if any(
            w["worker_id"] == worker_id and w["leases"] > 0 for w in table
        ):
            return True
        time.sleep(0.05)
    return False


class TestWorkerSigkill:
    """Scenario: SIGKILL a remote worker mid-solve; recovery is exact."""

    @pytest.mark.slow
    def test_reassigned_job_yields_byte_identical_record(self, tmp_path):
        from repro.eval.campaign import (
            CampaignConfig,
            detect_bug,
            record_comparable_dict,
            record_from_json_dict,
        )

        config = CampaignConfig(
            bug_ids=[CHAOS_BUG],
            run_industrial_flow=False,
            run_directed_tests=False,
        )
        ctx = multiprocessing.get_context("fork")
        proc = None
        with LocalServer(
            cache_dir=str(tmp_path / "cache"),
            workers=0,
            fleet=True,
            fleet_kwargs=dict(lease_seconds=1.5, heartbeat_seconds=0.25),
        ) as url:
            client = ServeClient(url)
            view = client.submit(bug_id=CHAOS_BUG, config=config)
            proc = ctx.Process(
                target=_worker_process_main, args=(url, "chaos-a")
            )
            proc.start()
            assert _wait_for_lease(client, "chaos-a")
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=10)
            # Worker B recovers the job once the dead worker's lease is
            # swept (max_jobs=1: solve it, commit it, exit).
            FleetWorker(
                url,
                worker_id="chaos-b",
                use_processes=False,
                poll_seconds=0.05,
                max_jobs=1,
            ).run()
            final = client.wait_done(view.job_id, timeout=120)
            assert final.state == "done"
            fleet_stats = client.fleet()
            assert fleet_stats["lease_reassignments"] == 1
            assert fleet_stats["workers"]["dead"] == 1
        direct = detect_bug(CHAOS_BUG, config)
        served = record_from_json_dict(final.record)
        assert record_comparable_dict(direct) == record_comparable_dict(served)
        assert served.detected_by.get("eddiv")


class TestZombieFencing:
    """Scenario: a worker pauses inside commit, resumes after reassignment."""

    def test_late_zombie_commit_is_fence_rejected(self, tmp_path):
        import threading

        # The first commit attempt (worker A's) stalls for longer than the
        # lease TTL + death grace: A becomes a zombie holding a finished
        # result.  The second commit (worker B's) is clean.
        faults.install(
            faults.FaultInjector(
                [
                    faults.FaultSpec(
                        site="fleet.worker.commit",
                        action="delay",
                        delay_seconds=3.0,
                        at=1,
                        count=1,
                    )
                ],
                seed=11,
            )
        )
        with LocalServer(
            cache_dir=str(tmp_path / "cache"),
            workers=0,
            entry=_selftest_entry,
            use_processes=False,
            fleet=True,
            fleet_kwargs=dict(lease_seconds=0.8, heartbeat_seconds=0.2),
        ) as url:
            client = ServeClient(url)
            view = client.submit(spec=spec("__sleep:0.1__", tag="zombie"))
            worker_a = FleetWorker(
                url,
                worker_id="zombie-a",
                entry=_selftest_entry,
                use_processes=False,
                poll_seconds=0.05,
                max_jobs=1,
            )
            thread_a = threading.Thread(target=worker_a.run, daemon=True)
            thread_a.start()
            # The lease must expire while A sleeps inside the commit path.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if client.fleet()["lease_reassignments"] >= 1:
                    break
                time.sleep(0.05)
            assert client.fleet()["lease_reassignments"] == 1
            worker_b = FleetWorker(
                url,
                worker_id="zombie-b",
                entry=_selftest_entry,
                use_processes=False,
                poll_seconds=0.05,
                max_jobs=1,
            )
            worker_b.run()
            final = client.wait_done(view.job_id, timeout=30)
            thread_a.join(timeout=30)
            assert final.state == "done"
            assert final.record["qed_definitive"] is True
            stats = client.stats()["queue"]
            # Executed exactly once: B's commit landed, A's was fenced.
            assert stats["executed"] == 1
            fleet_stats = stats["fleet"]
            assert fleet_stats["fenced_commits_rejected"] == 1
            assert fleet_stats["commits_accepted"] == 1
            assert worker_a.commits_rejected == 1
            assert worker_b.commits_accepted == 1

    def test_duplicated_commit_second_send_is_redundant(self, tmp_path):
        faults.install(
            faults.FaultInjector(
                [
                    faults.FaultSpec(
                        site="fleet.worker.commit",
                        action="duplicate",
                        at=1,
                        count=1,
                    )
                ],
                seed=5,
            )
        )
        with LocalServer(
            cache_dir=None,
            workers=0,
            entry=_selftest_entry,
            use_processes=False,
            fleet=True,
            fleet_kwargs=dict(heartbeat_seconds=0.2),
        ) as url:
            client = ServeClient(url)
            view = client.submit(spec=spec(tag="dup-commit"))
            worker = FleetWorker(
                url,
                worker_id="dup-w",
                entry=_selftest_entry,
                use_processes=False,
                poll_seconds=0.05,
                max_jobs=1,
            )
            worker.run()
            final = client.wait_done(view.job_id, timeout=30)
            assert final.state == "done"
            stats = client.stats()["queue"]
            assert stats["executed"] == 1
            assert stats["fleet"]["duplicate_commits"] == 1

    def test_dropped_heartbeats_reassign_but_verdict_survives(self, tmp_path):
        # Every heartbeat from worker A is dropped on the floor: the
        # coordinator sees silence, declares A dead mid-solve and
        # reassigns.  A's eventual commit is fenced; B's wins.
        import threading

        faults.install(
            faults.FaultInjector(
                [
                    faults.FaultSpec(
                        site="fleet.worker.heartbeat",
                        action="drop",
                        at=1,
                        count=0,  # every heartbeat
                    )
                ],
                seed=3,
            )
        )
        with LocalServer(
            cache_dir=None,
            workers=0,
            entry=_selftest_entry,
            use_processes=False,
            fleet=True,
            fleet_kwargs=dict(lease_seconds=0.6, heartbeat_seconds=0.15),
        ) as url:
            client = ServeClient(url)
            view = client.submit(spec=spec("__sleep:1.2__", tag="hb-drop"))
            worker_a = FleetWorker(
                url,
                worker_id="mute-a",
                entry=_selftest_entry,
                use_processes=False,
                poll_seconds=0.05,
                max_jobs=1,
            )
            thread_a = threading.Thread(target=worker_a.run, daemon=True)
            thread_a.start()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if client.fleet()["lease_reassignments"] >= 1:
                    break
                time.sleep(0.05)
            assert client.fleet()["lease_reassignments"] == 1
            faults.clear()  # B's heartbeats go through
            worker_b = FleetWorker(
                url,
                worker_id="loud-b",
                entry=_selftest_entry,
                use_processes=False,
                poll_seconds=0.05,
                max_jobs=1,
            )
            worker_b.run()
            final = client.wait_done(view.job_id, timeout=30)
            thread_a.join(timeout=30)
            assert final.state == "done"
            assert worker_a.heartbeats_dropped >= 1
            assert client.stats()["queue"]["executed"] == 1


class TestReplicationTornTail:
    """Scenario: a torn log tail crosses the replication stream."""

    def test_follower_replays_around_torn_tail_then_heals(self, tmp_path):
        with LocalServer(
            cache_dir=str(tmp_path / "primary"),
            workers=1,
            entry=_selftest_entry,
            use_processes=False,
        ) as url:
            client = ServeClient(url)
            first = client.wait_done(
                client.submit(spec=spec(tag="whole")).job_id, timeout=30
            )
            # The second entry's append is torn mid-line (crash between
            # write() and the page hitting disk).
            faults.install(
                faults.FaultInjector(
                    [
                        faults.FaultSpec(
                            site="serve.cache.append",
                            action="torn_write",
                            at=1,
                            count=1,
                            torn_bytes=20,
                        )
                    ],
                    seed=9,
                )
            )
            torn = client.wait_done(
                client.submit(spec=spec(tag="torn")).job_id, timeout=30
            )
            faults.clear()
            follower = CacheFollower(url, str(tmp_path / "mirror"))
            follower.sync()
            # The mirror now ends in the torn line; replay skips it but
            # keeps everything before it.
            mirror_cache = follower.open_cache()
            assert mirror_cache.get(first.record["cache_key"]) is not None
            assert mirror_cache.get(torn.record["cache_key"]) is None
            # The primary's next append heals the tail (newline splice);
            # the follower's next sync picks up the healing byte plus the
            # new entry, and both become servable.
            healed = client.wait_done(
                client.submit(spec=spec(tag="healed")).job_id, timeout=30
            )
            follower.sync()
            standby = follower.open_cache()
            assert standby.get(first.record["cache_key"]) is not None
            assert standby.get(healed.record["cache_key"]) is not None
            # The torn entry stays lost -- torn means never durable.
            assert standby.get(torn.record["cache_key"]) is None
