"""Chaos x observability: traces and flight records of faulted jobs.

The acceptance contract for the flight recorder is exercised here under
the seeded fault injector: a SIGKILL-retried job's trace shows every
dispatch attempt, a quarantined job leaves a flight artifact carrying all
of them, and the fault injector's firings surface as span events in
workers that survive to ship them.
"""

import asyncio
import json

from repro import faults
from repro.serve.queue import JobQueue, JobState, _selftest_entry

from chaos_helpers import make_spec as spec


async def wait_terminal(queue, job, timeout=60.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not job.state.terminal and loop.time() < deadline:
        await queue.wait(job, since=job.version, timeout=deadline - loop.time())
    assert job.state.terminal, f"job stuck in {job.state} ({job.error})"
    return job


def run(coro):
    return asyncio.run(coro)


async def with_queue(body, **kwargs):
    kwargs.setdefault("entry", _selftest_entry)
    kwargs.setdefault("use_processes", True)
    kwargs.setdefault("retry_backoff_base", 0.01)
    queue = JobQueue(**kwargs)
    await queue.start()
    try:
        return await body(queue)
    finally:
        await queue.stop()


def _attempt_spans(trace):
    return [s for s in trace["spans"] if s["name"] == "queue.attempt"]


class TestKillRetryTrace:
    def test_retried_job_trace_shows_both_attempts(self, tmp_path):
        faults.install(
            faults.FaultInjector(
                [
                    faults.FaultSpec(
                        site="serve.queue.worker",
                        action="kill",
                        at=1,
                        once=True,
                    )
                ],
                seed=11,
                token_dir=tmp_path,
            )
        )

        async def body(queue):
            job = queue.submit(spec("__echo__", tag="kill-once-trace"))
            await wait_terminal(queue, job)
            assert job.state is JobState.DONE
            assert job.attempts == 1
            trace = queue.traces.to_json_dict(job.job_id)
            attempts = _attempt_spans(trace)
            assert [a["attrs"]["attempt"] for a in attempts] == [1, 2]
            # The killed dispatch closed on the crash, the retry on done.
            assert attempts[0]["attrs"]["outcome"] == "BrokenProcessPool"
            assert attempts[1]["attrs"]["outcome"] == "done"
            # The retry decision itself is on the record as a span event.
            events = [e for e in trace["events"] if e["name"] == "queue.retry"]
            assert len(events) == 1 and events[0]["attrs"]["attempt"] == 1
            assert queue.metrics.counter_value("qed_job_retries_total") == 1
            assert queue.metrics.counter_value("qed_pool_rebuilds_total") == 1

        run(with_queue(body))


class TestQuarantineFlightRecord:
    def test_quarantined_job_dumps_artifact_with_all_attempts(self, tmp_path):
        faults.install(
            faults.FaultInjector(
                [
                    # No once-token: every dispatch dies at its first hit.
                    faults.FaultSpec(
                        site="serve.queue.worker", action="kill", at=1, count=0
                    )
                ],
                seed=3,
            )
        )

        async def body(queue):
            doomed = queue.submit(spec("__echo__", tag="poison-flight"))
            await wait_terminal(queue, doomed, timeout=120.0)
            assert doomed.state is JobState.FAILED
            assert doomed.cache_key in queue.quarantined

            path = tmp_path / f"flight-{doomed.job_id}.json"
            assert path.exists()
            payload = json.loads(path.read_text())
            assert payload["reason"] == "quarantined"
            assert payload["attempts"] == queue.max_retries + 1
            attempts = _attempt_spans(payload["trace"])
            assert len(attempts) == queue.max_retries + 1
            assert all(
                a["attrs"]["outcome"] == "BrokenProcessPool" for a in attempts
            )
            event_names = [e["name"] for e in payload["trace"]["events"]]
            assert event_names.count("queue.retry") == queue.max_retries
            assert "queue.quarantined" in event_names

            # The fast-fail rejection of a later submission dumps its own
            # artifact pointing at the quarantine.
            rejected = queue.submit(spec("__echo__", tag="poison-flight"))
            assert rejected.state is JobState.FAILED
            rejection = json.loads(
                (tmp_path / f"flight-{rejected.job_id}.json").read_text()
            )
            assert rejection["reason"] == "quarantine_rejected"
            assert rejection["quarantine"]["reason"] == "worker_crash"

        run(with_queue(body, flight_dir=str(tmp_path)))


class TestFaultFiringEvents:
    def test_surviving_worker_ships_fault_event(self, tmp_path):
        # A delay fault fires and the worker lives on to ship its spans --
        # the firing must be visible as a span event in the job's trace.
        faults.install(
            faults.FaultInjector(
                [
                    faults.FaultSpec(
                        site="dist.scheduler.cube",
                        action="delay",
                        at=1,
                        delay_seconds=0.01,
                        count=1,
                    )
                ],
                seed=7,
            )
        )
        from repro.dist.cubes import binary_cubes
        from repro.dist.scheduler import SplitConfig, SplitQuery, WorkScheduler
        from repro.obs import trace as obs_trace

        collector = obs_trace.start_trace()
        try:
            query = SplitQuery(
                clauses=[[1, 2], [3, 4], [-1, -3], [-1, -4], [-2, -3], [-2, -4]],
                num_vars=4,
                cubes=binary_cubes([1, 2], 2),
            )
            WorkScheduler(SplitConfig(workers=2)).solve(query)
        finally:
            obs_trace.clear()
        fired = [e for e in collector.events if e["name"] == "fault.fired"]
        assert fired, "fault firing did not surface as a span event"
        assert fired[0]["attrs"]["site"] == "dist.scheduler.cube"
        assert fired[0]["attrs"]["action"] == "delay"
