"""Chaos scenarios against the campaign journal: crash, resume, equality.

The acceptance bar from the fault-tolerance issue: a campaign SIGKILLed
mid-run resumes from its journal with the already-journaled prefix
byte-identical, and the merged records equal a fresh fault-free run on
every deterministic field.  The kill happens in a *subprocess* because
``faults`` delivers it as ``os._exit`` -- the real thing, not an
exception a ``finally`` could soften.
"""

import json
import subprocess
import sys

from repro import faults
from repro.eval.campaign import (
    CampaignConfig,
    load_campaign_journal,
    record_to_json_dict,
    run_campaign,
)

#: Two journalable sub-second bugs (industrial flow and directed tests off).
BUG_IDS = ["sra_zero_fill", "cmpi_carry_spec"]


def _config():
    return CampaignConfig(
        bug_ids=BUG_IDS,
        run_industrial_flow=False,
        run_directed_tests=False,
    )


def _comparable(record):
    """Every deterministic field: wall-clock measurements stripped."""
    data = record_to_json_dict(record)
    deterministic = {
        key: value
        for key, value in data.items()
        if not key.endswith("_seconds")
    }
    return json.dumps(deterministic, sort_keys=True)


_KILLED_CAMPAIGN = """
import sys
from repro import faults
from repro.eval.campaign import CampaignConfig, run_campaign

faults.install(
    faults.FaultInjector(
        [faults.FaultSpec(site="eval.campaign.record", action="kill", at=1)],
        seed=29,
    )
)
run_campaign(
    CampaignConfig(
        bug_ids={bug_ids!r},
        run_industrial_flow=False,
        run_directed_tests=False,
    ),
    journal_path=sys.argv[1],
)
raise SystemExit("unreachable: the kill must fire first")
"""


class TestKilledCampaignResumes:
    def test_resume_preserves_prefix_and_matches_fault_free(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                _KILLED_CAMPAIGN.format(bug_ids=BUG_IDS),
                str(journal),
            ],
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd="/root/repo",
            capture_output=True,
            timeout=120,
        )
        # The seeded SIGKILL fired right after the first record's append.
        assert proc.returncode == faults.KILL_EXIT_CODE, proc.stderr.decode()
        prefix = journal.read_bytes()
        survivors = load_campaign_journal(str(journal), _config())
        assert [r.bug_id for r in survivors] == BUG_IDS[:1]

        # Resume in-process: only the missing bug runs, appended after
        # the untouched prefix.
        resumed = run_campaign(_config(), journal_path=str(journal))
        assert journal.read_bytes().startswith(prefix)
        assert [r.bug_id for r in resumed.records] == BUG_IDS

        # The merged result is indistinguishable from a run that never
        # crashed, on every deterministic field.
        fresh = run_campaign(_config())
        assert [_comparable(r) for r in resumed.records] == [
            _comparable(r) for r in fresh.records
        ]

        # And the journal itself now replays the complete campaign.
        replayed = load_campaign_journal(str(journal), _config())
        assert [_comparable(r) for r in replayed] == [
            _comparable(r) for r in fresh.records
        ]


class TestDeadlineTruncatedDetection:
    def test_truncated_search_is_marked_and_non_definitive(self):
        from repro.deadline import Deadline
        from repro.eval.campaign import CampaignConfig, detect_bug

        # An eddiv bug under an already-expired budget: every bound's
        # solve returns UNKNOWN immediately, nothing is claimed.
        record = detect_bug(
            "wrport_collision",
            CampaignConfig(
                run_industrial_flow=False, run_directed_tests=False
            ),
            deadline=Deadline.from_seconds(0.0),
        )
        assert record.deadline_expired is True
        assert record.qed_definitive is False
        assert not record.detected_by_symbolic_qed

    def test_detection_found_before_expiry_stays_definitive(self):
        from repro.deadline import Deadline
        from repro.eval.campaign import detect_bug

        # single_i runs to completion and finds the bug; with no
        # industrial/directed stages requested the record is complete,
        # so expiry marks it without weakening the verdict.
        record = detect_bug(
            BUG_IDS[0], _config(), deadline=Deadline.from_seconds(0.0)
        )
        assert record.deadline_expired is True
        assert record.detected_by_symbolic_qed
        assert record.qed_definitive is True

    def test_expiry_with_requested_stages_skipped_downgrades(self):
        from repro.deadline import Deadline
        from repro.eval.campaign import CampaignConfig, detect_bug

        record = detect_bug(
            BUG_IDS[0],
            CampaignConfig(
                bug_ids=BUG_IDS,
                run_industrial_flow=True,
                run_directed_tests=False,
            ),
            deadline=Deadline.from_seconds(0.0),
        )
        assert record.deadline_expired is True
        # The industrial flow was requested but skipped: incomplete.
        assert record.qed_definitive is False
        assert record.crs_detected is False


class TestTornJournalRecord:
    def test_torn_record_is_resolved_on_resume(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        faults.install(
            faults.FaultInjector(
                [
                    # Tear the second record's append mid-line: the crash
                    # window between write() and a completed fsync.
                    faults.FaultSpec(
                        site="eval.campaign.journal", action="torn_write", at=2
                    )
                ],
                seed=31,
            )
        )
        first = run_campaign(_config(), journal_path=str(journal))
        faults.clear()

        # Replay drops exactly the torn record; the healthy one survives.
        survivors = load_campaign_journal(str(journal), _config())
        assert [r.bug_id for r in survivors] == BUG_IDS[:1]

        # Resume re-solves only the torn bug and converges on the same
        # records as the faulted run already returned in memory.
        resumed = run_campaign(_config(), journal_path=str(journal))
        assert [_comparable(r) for r in resumed.records] == [
            _comparable(r) for r in first.records
        ]
        replayed = load_campaign_journal(str(journal), _config())
        assert [r.bug_id for r in replayed] == BUG_IDS
