"""Chaos-harness fixtures: every test leaves no injector behind."""

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def _clear_faults():
    """An injector left installed would corrupt every later test."""
    yield
    faults.clear()
