"""Chaos scenarios against the distributed cube-and-conquer scheduler.

The acceptance bar: a killed or slowed cube worker may cost time, never
correctness.  The verdict under faults must equal the fault-free verdict
(UNSAT stays UNSAT -- the crashed cube is recovered and re-solved, not
silently counted as done).
"""

from repro import faults
from repro.deadline import Deadline
from repro.dist.cubes import binary_cubes, ladder_cubes
from repro.dist.scheduler import SplitConfig, SplitQuery, WorkScheduler
from repro.sat.solver import SolverStatus

# x1|x2 and x3|x4 but every cross pair forbidden: UNSAT.
UNSAT_CLAUSES = [[1, 2], [3, 4], [-1, -3], [-1, -4], [-2, -3], [-2, -4]]
# Satisfiable with 3 forced true whenever 1 or 2 holds.
SAT_CLAUSES = [[1, 2], [-1, 3], [-2, 3]]


def _query(clauses, num_vars, cubes):
    return SplitQuery(
        clauses=[list(c) for c in clauses], num_vars=num_vars, cubes=cubes
    )


def _solve(clauses, num_vars, cubes, workers=2):
    query = _query(clauses, num_vars, cubes)
    return WorkScheduler(SplitConfig(workers=workers)).solve(query)


class TestCubeWorkerKill:
    def test_killed_worker_does_not_flip_unsat(self, tmp_path):
        # Fault-free baseline first (also warms nothing: fresh processes).
        baseline = _solve(UNSAT_CLAUSES, 4, binary_cubes([1, 2], 2))
        assert baseline.status is SolverStatus.UNSAT

        faults.install(
            faults.FaultInjector(
                [
                    # Kill the first worker that picks up a cube, exactly
                    # once across the whole (multi-process) run.
                    faults.FaultSpec(
                        site="dist.scheduler.cube",
                        action="kill",
                        at=1,
                        once=True,
                    )
                ],
                seed=13,
                token_dir=tmp_path,
            )
        )
        chaotic = _solve(UNSAT_CLAUSES, 4, binary_cubes([1, 2], 2))
        # The crashed cube was re-enqueued and re-solved: same verdict,
        # every cube accounted for.
        assert chaotic.status is baseline.status

    def test_killed_worker_does_not_lose_sat(self, tmp_path):
        faults.install(
            faults.FaultInjector(
                [
                    faults.FaultSpec(
                        site="dist.scheduler.cube",
                        action="kill",
                        at=1,
                        once=True,
                    )
                ],
                seed=17,
                token_dir=tmp_path,
            )
        )
        result = _solve(SAT_CLAUSES, 3, ladder_cubes([1, 2]))
        assert result.status is SolverStatus.SAT
        assert result.model is not None
        # The model must actually satisfy the formula (1-indexed).
        for clause in SAT_CLAUSES:
            assert any(
                (lit > 0) == result.model[abs(lit)] for lit in clause
            ), f"clause {clause} unsatisfied"


class TestSlowWorker:
    def test_delayed_cubes_only_cost_time(self):
        faults.install(
            faults.FaultInjector(
                [
                    # Every cube pickup stalls briefly: a worker swapping
                    # or an overloaded core, not a crash.
                    faults.FaultSpec(
                        site="dist.scheduler.cube",
                        action="delay",
                        at=1,
                        count=0,
                        delay_seconds=0.05,
                    )
                ],
                seed=19,
            )
        )
        result = _solve(UNSAT_CLAUSES, 4, binary_cubes([1, 2], 2))
        assert result.status is SolverStatus.UNSAT
        assert result.stats.cubes_total == 4
        assert all(c.verdict == "unsat" for c in result.stats.cubes)


class TestDeadlineMidSolve:
    """An expired wall-clock budget degrades to UNKNOWN, never flips."""

    def test_expired_deadline_is_unknown_sequentially(self):
        query = _query(UNSAT_CLAUSES, 4, binary_cubes([1, 2], 2))
        result = WorkScheduler(SplitConfig(workers=1)).solve(
            query, deadline=Deadline.from_seconds(0.0)
        )
        assert result.status is SolverStatus.UNKNOWN

    def test_expired_deadline_is_unknown_across_workers(self):
        query = _query(UNSAT_CLAUSES, 4, binary_cubes([1, 2], 2))
        result = WorkScheduler(SplitConfig(workers=2)).solve(
            query, deadline=Deadline.from_seconds(0.0)
        )
        assert result.status is SolverStatus.UNKNOWN

    def test_generous_deadline_does_not_change_the_verdict(self):
        query = _query(UNSAT_CLAUSES, 4, binary_cubes([1, 2], 2))
        result = WorkScheduler(SplitConfig(workers=2)).solve(
            query, deadline=Deadline.from_seconds(60.0)
        )
        assert result.status is SolverStatus.UNSAT
