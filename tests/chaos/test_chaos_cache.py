"""Chaos scenarios against the result cache's append-only log.

The log is the crash boundary of the serving layer: a worker dying
mid-append leaves a torn line, a retried append can double a line.  Both
faults are injected through :mod:`repro.faults` at the real write site
(``serve.cache.append``) and must be invisible to replay -- every entry
written *healthily* survives, and no fault resurrects a weaker verdict.
"""

from repro import faults
from repro.serve.cache import ResultCache


def _record(tag):
    return {"bug_id": tag, "qed_definitive": True}


class TestTornWrite:
    def test_torn_line_loses_only_itself(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        faults.install(
            faults.FaultInjector(
                [
                    faults.FaultSpec(
                        site="serve.cache.append", action="torn_write", at=1
                    )
                ],
                seed=2,
            )
        )
        cache.put("k" * 64, _record("torn"), fingerprint="f", definitive=True)
        faults.clear()
        cache.put("h" * 64, _record("whole"), fingerprint="f", definitive=True)

        replayed = ResultCache(str(tmp_path))
        # The torn entry is gone -- a crash mid-write loses that write --
        # but the entry appended *after* it replays intact: the torn tail
        # was healed before the next line, never glued onto it.
        assert replayed.get("k" * 64) is None
        entry = replayed.get("h" * 64)
        assert entry is not None
        assert entry.record == _record("whole")

    def test_torn_tail_heals_without_a_restart(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        faults.install(
            faults.FaultInjector(
                [
                    faults.FaultSpec(
                        site="serve.cache.append", action="torn_write", at=1
                    )
                ],
                seed=2,
            )
        )
        cache.put("k" * 64, _record("torn"), fingerprint="f", definitive=True)
        faults.clear()
        # Same process keeps appending: the in-memory tier still has the
        # torn entry, and the healed log serves the later one on restart.
        cache.put("h" * 64, _record("after"), fingerprint="f", definitive=True)
        log = (tmp_path / "results.jsonl").read_bytes()
        assert log.endswith(b"\n")
        # Exactly two lines: the torn fragment (newline-healed) + the
        # healthy entry.
        assert log.count(b"\n") == 2


class TestDuplicateWrite:
    def test_duplicated_line_replays_to_one_entry(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        faults.install(
            faults.FaultInjector(
                [
                    faults.FaultSpec(
                        site="serve.cache.append", action="duplicate", at=1
                    )
                ],
                seed=2,
            )
        )
        cache.put("k" * 64, _record("twice"), fingerprint="f", definitive=True)
        faults.clear()

        replayed = ResultCache(str(tmp_path))
        entry = replayed.get("k" * 64)
        assert entry is not None
        assert entry.record == _record("twice")
        assert len(replayed) == 1  # the duplicate aliases, it does not fork


class TestMonotoneUpgradeSurvivesFaults:
    def test_deadline_unknown_upgrades_but_never_downgrades(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = "k" * 64
        # A deadline-truncated run admits a non-definitive UNKNOWN...
        cache.put(
            key,
            {"bug_id": "b", "qed_definitive": False, "deadline_expired": True},
            fingerprint="f",
            definitive=False,
        )
        # ...a later full run upgrades it to definitive...
        cache.put(
            key,
            {"bug_id": "b", "qed_definitive": True},
            fingerprint="f",
            definitive=True,
        )
        assert cache.upgrades == 1
        # ...and another truncated run can never downgrade it back.
        kept = cache.put(
            key,
            {"bug_id": "b", "qed_definitive": False, "deadline_expired": True},
            fingerprint="f",
            definitive=False,
        )
        assert kept.definitive is True
        assert cache.downgrades_rejected == 1

        # Replay applies the same rule: the strongest line survives the
        # restart even though a weaker one was appended after it.
        replayed = ResultCache(str(tmp_path))
        entry = replayed.get(key)
        assert entry is not None and entry.definitive is True
        assert entry.record["qed_definitive"] is True
