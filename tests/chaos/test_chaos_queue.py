"""Chaos scenarios against the serving job queue.

Every scenario installs a seeded :class:`repro.faults.FaultInjector`,
drives the queue through the fault, and asserts the fabric reaches a
terminal state whose *definitive* verdicts match a fault-free run --
degrade to UNKNOWN/FAILED is allowed, a wrong answer never is.
"""

import asyncio

from repro import faults
from repro.serve.cache import ResultCache
from repro.serve.queue import JobQueue, JobState, QueueDraining, _selftest_entry

from chaos_helpers import make_spec as spec

import pytest


async def wait_terminal(queue, job, timeout=30.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not job.state.terminal and loop.time() < deadline:
        await queue.wait(job, since=job.version, timeout=deadline - loop.time())
    assert job.state.terminal, f"job stuck in {job.state} ({job.error})"
    return job


def run(coro):
    return asyncio.run(coro)


async def with_queue(body, **kwargs):
    kwargs.setdefault("entry", _selftest_entry)
    kwargs.setdefault("use_processes", False)
    kwargs.setdefault("retry_backoff_base", 0.01)
    queue = JobQueue(**kwargs)
    await queue.start()
    try:
        return await body(queue)
    finally:
        await queue.stop()


#: The fault-free selftest verdict every recovered run must reproduce.
FAULT_FREE = {"detected_by": {"eddiv": True}, "qed_definitive": True}


def assert_fault_free_verdict(record):
    for key, value in FAULT_FREE.items():
        assert record[key] == value


class TestWorkerKillRetry:
    """Scenario: the worker process is killed once; the retry succeeds."""

    def test_kill_once_then_retry_matches_fault_free(self, tmp_path):
        faults.install(
            faults.FaultInjector(
                [
                    faults.FaultSpec(
                        site="serve.queue.worker",
                        action="kill",
                        at=1,
                        once=True,
                    )
                ],
                seed=11,
                token_dir=tmp_path,
            )
        )

        async def body(queue):
            job = queue.submit(spec("__echo__", tag="kill-once"))
            await wait_terminal(queue, job, timeout=60.0)
            assert job.state is JobState.DONE
            assert_fault_free_verdict(job.record)
            assert job.attempts == 1  # exactly one crash, one retry
            assert queue.retried == 1
            assert queue.pool_rebuilds == 1
            assert queue.failed == 0
            assert not queue.quarantined

        run(with_queue(body, use_processes=True))


class TestPoisonQuarantine:
    """Scenario: a spec that kills every worker is quarantined."""

    def test_persistent_killer_quarantined_then_force_clears(self, tmp_path):
        faults.install(
            faults.FaultInjector(
                [
                    # No once-token: every dispatch (a fresh fork with a
                    # zeroed counter) dies at its first hit.
                    faults.FaultSpec(
                        site="serve.queue.worker", action="kill", at=1, count=0
                    )
                ],
                seed=3,
            )
        )

        async def body(queue):
            doomed = queue.submit(spec("__echo__", tag="poison"))
            await wait_terminal(queue, doomed, timeout=120.0)
            assert doomed.state is JobState.FAILED
            assert "Broken" in doomed.error
            assert doomed.attempts == queue.max_retries + 1
            assert doomed.cache_key in queue.quarantined
            reason = queue.quarantined[doomed.cache_key]
            assert reason["reason"] == "worker_crash"
            assert reason["attempts"] == doomed.attempts

            # Resubmission fails fast: no dispatch, no new pool burned.
            rebuilds = queue.pool_rebuilds
            rejected = queue.submit(spec("__echo__", tag="poison"))
            assert rejected.state is JobState.FAILED
            assert "quarantined" in rejected.error
            assert queue.pool_rebuilds == rebuilds
            assert queue.quarantine_rejections == 1

            # The operator override: clear the fault, force a re-run.
            faults.clear()
            forced = queue.submit(spec("__echo__", tag="poison"), force=True)
            assert doomed.cache_key not in queue.quarantined
            await wait_terminal(queue, forced, timeout=60.0)
            assert forced.state is JobState.DONE
            assert_fault_free_verdict(forced.record)

        run(with_queue(body, use_processes=True))


class TestProgressMessageFaults:
    """Scenarios: progress events dropped or duplicated in flight."""

    def test_dropped_progress_does_not_change_verdict(self):
        faults.install(
            faults.FaultInjector(
                [
                    faults.FaultSpec(
                        site="serve.queue.progress", action="drop", at=1, count=0
                    )
                ],
                seed=5,
            )
        )

        async def body(queue):
            job = queue.submit(spec("__echo__", tag="dropped"))
            await wait_terminal(queue, job)
            assert job.state is JobState.DONE
            assert_fault_free_verdict(job.record)
            assert job.progress == []  # lost, and that must be fine

        run(with_queue(body))

    def test_duplicated_progress_is_tolerated(self):
        faults.install(
            faults.FaultInjector(
                [
                    faults.FaultSpec(
                        site="serve.queue.progress", action="duplicate", at=1
                    )
                ],
                seed=5,
            )
        )

        async def body(queue):
            job = queue.submit(spec("__echo__", tag="duplicated"))
            await wait_terminal(queue, job)
            assert job.state is JobState.DONE
            assert_fault_free_verdict(job.record)
            assert len(job.progress) == 2
            assert job.progress[0] == job.progress[1]

        run(with_queue(body))


class TestDeadlines:
    """Scenarios: wall-clock budgets expire while queued / propagate down."""

    def test_queued_deadline_expiry_is_unknown_and_uncached(self):
        async def body(queue):
            blocker = queue.submit(spec("__sleep:0.3__"))
            doomed = queue.submit(
                spec("__echo__", tag="expiring"), deadline_seconds=0.05
            )
            await wait_terminal(queue, blocker)
            await wait_terminal(queue, doomed)
            assert doomed.state is JobState.DONE
            assert doomed.record["deadline_expired"] is True
            assert doomed.record["qed_definitive"] is False
            assert queue.deadline_expired == 1
            # The zero-work synthetic record must never enter the cache.
            assert doomed.cache_key not in queue.cache
            assert blocker.cache_key in queue.cache

        run(with_queue(body, cache=ResultCache(None)))

    def test_remaining_budget_reaches_the_worker(self):
        async def body(queue):
            job = queue.submit(spec("__echo__", tag="budget"), deadline_seconds=30.0)
            await wait_terminal(queue, job)
            assert job.state is JobState.DONE
            handed = job.record["deadline_seconds"]
            assert 0.0 < handed <= 30.0

        run(with_queue(body))

    def test_no_deadline_keeps_legacy_entry_signature(self):
        # Entries with the historic 3-argument signature must keep
        # working when no deadline is set (no kwargs are passed).
        async def body(queue):
            job = queue.submit(spec("__echo__", tag="legacy"))
            await wait_terminal(queue, job)
            assert job.state is JobState.DONE
            assert "deadline_seconds" not in job.record

        run(with_queue(body, entry=_legacy_entry))


def _legacy_entry(spec_dict, job_id="", progress=None):
    return {
        "record": {
            "bug_id": str(spec_dict.get("bug_id", "")),
            "detected_by": {"eddiv": True},
            "qed_definitive": True,
        },
        "definitive": True,
    }


class TestDrainAndResume:
    """Scenario: graceful shutdown persists queued work; restore resumes."""

    def test_drain_snapshots_queued_and_rejects_new(self):
        async def body(queue):
            blocker = queue.submit(spec("__sleep:0.3__"))
            # Let the blocker take the slot so "survivor" is truly queued.
            while blocker.state is JobState.QUEUED:
                await queue.wait(blocker, since=blocker.version, timeout=1.0)
            queued = queue.submit(
                spec("__echo__", tag="survivor"),
                priority=4,
                deadline_seconds=60.0,
            )
            state = await queue.drain()
            # Running solve finished (and before the snapshot was cut).
            assert blocker.state is JobState.DONE
            [item] = state["queued"]
            assert item["spec"]["config"]["tag"] == "survivor"
            assert item["priority"] == 4
            assert 0.0 < item["deadline_seconds"] <= 60.0
            # Local waiters see a terminal state, not a hang.
            assert queued.state is JobState.CANCELLED
            with pytest.raises(QueueDraining):
                queue.submit(spec("__echo__", tag="late"))
            return state

        state = run(with_queue(body))

        async def resume(queue):
            [job] = queue.restore_state(state)
            assert job.priority == 4
            assert job.deadline is not None
            await wait_terminal(queue, job)
            assert job.state is JobState.DONE
            assert_fault_free_verdict(job.record)

        run(with_queue(resume))
