"""Shared helpers for the chaos tests (not a test module)."""

from repro.serve.keys import JobSpec


def make_spec(bug_id="__echo__", **config):
    """A synthetic, fully resolved spec for the selftest entry.

    Mirrors ``tests/serve/serve_helpers.make_spec``: the
    ``__echo__``/``__sleep:S__``/``__crash__`` markers drive
    :func:`repro.serve.queue._selftest_entry`, never the real executor.
    """
    return JobSpec(
        bug_id=bug_id,
        version="T.v1",
        fingerprint="f" * 64,
        mode="eddiv",
        focus_opcodes=("LDI",),
        bound=4,
        config=config,
    )
