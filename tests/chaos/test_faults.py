"""Unit tests of the seeded fault injector itself.

The chaos scenarios only mean something if the injector's firing
semantics are exact: 1-based ``at``, ``count`` windows, seed-derived
schedules that repeat, and fire-once tokens that hold across forked
processes (the crash-retry case: a replacement pool inherits the
parent's zero hit counters, so only the on-disk token can remember that
the fault already fired).
"""

import multiprocessing

import pytest

from repro import faults


def _hits_that_fire(spec, total_hits):
    injector = faults.FaultInjector([spec])
    fired = []
    for hit in range(1, total_hits + 1):
        if injector.message_fate(spec.site) != "deliver":
            fired.append(hit)
    return fired


class TestFaultSpec:
    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            faults.FaultSpec(site="s", action="segfault")

    def test_rejects_negative_at(self):
        with pytest.raises(ValueError, match="non-negative"):
            faults.FaultSpec(site="s", action="drop", at=-1)


class TestFiringWindows:
    def test_at_count_window(self):
        spec = faults.FaultSpec(site="s", action="drop", at=2, count=2)
        assert _hits_that_fire(spec, 6) == [2, 3]

    def test_count_zero_fires_forever(self):
        spec = faults.FaultSpec(site="s", action="drop", at=3, count=0)
        assert _hits_that_fire(spec, 6) == [3, 4, 5, 6]

    def test_sites_count_independently(self):
        injector = faults.FaultInjector(
            [faults.FaultSpec(site="a", action="drop", at=2)]
        )
        assert injector.message_fate("b") == "deliver"  # does not advance "a"
        assert injector.message_fate("a") == "deliver"  # hit 1
        assert injector.message_fate("a") == "drop"     # hit 2
        assert injector.fired == [("a", "drop", 2)]


class TestSeededSchedule:
    def test_seed_zero_at_is_deterministic(self):
        spec = faults.FaultSpec(site="s", action="drop", at=0)
        first = faults.FaultInjector([spec], seed=7).specs[0].at
        second = faults.FaultInjector([spec], seed=7).specs[0].at
        assert first == second
        assert 1 <= first <= 4  # small enough for short workloads

    def test_different_seeds_cover_different_hits(self):
        spec = faults.FaultSpec(site="s", action="drop", at=0)
        resolved = {
            faults.FaultInjector([spec], seed=seed).specs[0].at
            for seed in range(16)
        }
        assert len(resolved) > 1


class TestOnceToken:
    def test_once_fires_exactly_once_across_injectors(self, tmp_path):
        # Two injectors over the same token_dir model the dispatch-retry
        # case: the replacement worker is a fresh fork with zeroed hit
        # counters, and only the token file stops a second firing.
        spec = faults.FaultSpec(site="s", action="raise", at=1, once=True)
        first = faults.FaultInjector([spec], token_dir=tmp_path)
        second = faults.FaultInjector([spec], token_dir=tmp_path)
        with pytest.raises(faults.FaultError):
            first.crash_point("s")
        second.crash_point("s")  # token already claimed: must not raise
        assert second.fired == []

    def test_kill_exits_with_chaos_code(self, tmp_path):
        context = multiprocessing.get_context("fork")

        process = context.Process(target=_kill_child, args=(str(tmp_path),))
        process.start()
        process.join(timeout=10.0)
        assert process.exitcode == faults.KILL_EXIT_CODE


def _kill_child(token_dir):  # fork-entry
    injector = faults.FaultInjector(
        [faults.FaultSpec(site="s", action="kill", at=1, once=True)],
        token_dir=token_dir,
    )
    faults.install(injector)
    faults.crash_point("s")


class TestCallSiteHelpers:
    def test_no_injector_is_a_no_op(self):
        faults.clear()
        faults.crash_point("anything")
        assert faults.message_fate("anything") == "deliver"
        assert faults.mangle_write("anything", b"data") == b"data"
        assert faults.active() is None

    def test_mangle_torn_write_truncates(self):
        injector = faults.FaultInjector(
            [faults.FaultSpec(site="w", action="torn_write", torn_bytes=4)]
        )
        assert injector.mangle_write("w", b"0123456789") == b"0123"

    def test_mangle_duplicate_doubles(self):
        injector = faults.FaultInjector(
            [faults.FaultSpec(site="w", action="duplicate")]
        )
        assert injector.mangle_write("w", b"ab") == b"abab"

    def test_delay_sleeps_then_delivers(self):
        injector = faults.FaultInjector(
            [faults.FaultSpec(site="s", action="delay", delay_seconds=0.01)]
        )
        assert injector.message_fate("s") == "deliver"
        assert injector.fired == [("s", "delay", 1)]
