"""Chaos scenarios through the full HTTP serving stack.

Client-side connection faults must be absorbed by the idempotent retry
loop (POST /jobs is content-addressed, so a replay coalesces instead of
double-running), and a SIGTERM-style drain must persist queued work that
a restarted server resumes -- the operator-visible contract of
``scripts/serve_qed.py``.
"""

import os
import time

import pytest

from repro import faults
from repro.serve import LocalServer, ServeClient, ServeError
from repro.serve.queue import _selftest_entry

from chaos_helpers import make_spec as spec


def _server(tmp_path, **kwargs):
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    kwargs.setdefault("entry", _selftest_entry)
    kwargs.setdefault("use_processes", False)
    return LocalServer(**kwargs)


class TestClientRetry:
    """Scenario: the TCP connection resets mid-request; the retry wins."""

    def test_connection_reset_is_retried_transparently(self, tmp_path):
        injector = faults.FaultInjector(
            [
                faults.FaultSpec(
                    site="serve.client.request", action="reset", at=1, count=1
                )
            ],
            seed=23,
        )
        faults.install(injector)
        with _server(tmp_path) as url:
            client = ServeClient(url, retry_backoff=0.01)
            view = client.submit(spec=spec("__echo__", tag="reset-once"))
            final = client.wait_done(view.job_id, timeout=10)
        assert final.state == "done"
        assert final.record["qed_definitive"] is True
        # The fault really fired: the first attempt died on the wire.
        assert ("serve.client.request", "reset", 1) in injector.fired

    def test_reset_storm_exhausts_retries_with_clear_error(self, tmp_path):
        faults.install(
            faults.FaultInjector(
                [
                    faults.FaultSpec(
                        site="serve.client.request",
                        action="reset",
                        at=1,
                        count=0,
                    )
                ],
                seed=23,
            )
        )
        with _server(tmp_path) as url:
            client = ServeClient(url, retries=2, retry_backoff=0.01)
            with pytest.raises(ServeError) as excinfo:
                client.submit(spec=spec("__echo__", tag="reset-storm"))
        # A transport-level failure, not a fabricated HTTP status.
        assert excinfo.value.status is None


class TestDrainResume:
    """Scenario: SIGTERM drain persists queued work; a restart resumes it."""

    def test_drain_persists_and_restart_completes_the_job(self, tmp_path):
        state_path = str(tmp_path / "queue_state.json")
        cache_dir = str(tmp_path / "cache")

        first = LocalServer(
            cache_dir=cache_dir,
            entry=_selftest_entry,
            use_processes=False,
            state_path=state_path,
        )
        url = first.start()
        try:
            client = ServeClient(url, retry_backoff=0.01)
            assert client.healthy()

            blocker = client.submit(spec=spec("__sleep:0.3__"))
            deadline = time.monotonic() + 10.0
            while client.job(blocker.job_id).state == "queued":
                assert time.monotonic() < deadline, "blocker never started"
                time.sleep(0.01)
            survivor = client.submit(
                spec=spec("__echo__", tag="survivor"), deadline_seconds=60.0
            )

            state = first.drain()
            [item] = state["queued"]
            assert item["spec"]["config"]["tag"] == "survivor"

            # Draining: readiness trips and new work is refused with 503.
            assert not client.healthy()
            with pytest.raises(ServeError) as excinfo:
                client.submit(spec=spec("__echo__", tag="late"))
            assert excinfo.value.status == 503

            assert os.path.exists(state_path)
            # The blocker finished cleanly before the snapshot was cut.
            assert client.job(blocker.job_id).state == "done"
        finally:
            first.stop()

        second = LocalServer(
            cache_dir=cache_dir,
            entry=_selftest_entry,
            use_processes=False,
            state_path=state_path,
        )
        url = second.start()
        try:
            # The snapshot was consumed on resubmission...
            assert not os.path.exists(state_path)
            client = ServeClient(url, retry_backoff=0.01)
            # ...and the survivor runs to completion under the new pool.
            deadline = time.monotonic() + 10.0
            record = None
            while record is None and time.monotonic() < deadline:
                record = client.result(survivor.cache_key)
                if record is None:
                    time.sleep(0.02)
            assert record is not None, "restored job never completed"
            assert record["record"]["qed_definitive"] is True
            assert client.healthy()
        finally:
            second.stop()
