"""Tests for the bit-vector expression layer and concrete evaluation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.expr import BVConst, BVVar, ExprError, concat, mux, reduce_and, reduce_or
from repro.expr.eval import evaluate


class TestConstruction:
    def test_width_mismatch_rejected(self):
        with pytest.raises(ExprError):
            BVVar("a", 8) + BVVar("b", 4)

    def test_zero_width_rejected(self):
        with pytest.raises(ExprError):
            BVVar("a", 0)

    def test_constants_are_masked(self):
        assert BVConst(4, 0x1F).value == 0xF

    def test_structural_equality_and_hash(self):
        a1 = BVVar("a", 8) + BVConst(8, 1)
        a2 = BVVar("a", 8) + BVConst(8, 1)
        assert a1 == a2
        assert hash(a1) == hash(a2)

    def test_slice_out_of_range(self):
        with pytest.raises(ExprError):
            BVVar("a", 4)[7]

    def test_mux_requires_one_bv_branch(self):
        with pytest.raises(ExprError):
            mux(BVVar("s", 1), 1, 2)

    def test_immutable(self):
        a = BVVar("a", 4)
        with pytest.raises(AttributeError):
            a.width = 8


class TestEvaluation:
    ENV = {"a": 0b1011, "b": 0b0110, "s": 1}

    def _check(self, expr, expected):
        assert evaluate(expr, self.ENV) == expected

    def test_arithmetic(self):
        a, b = BVVar("a", 4), BVVar("b", 4)
        self._check(a + b, (0b1011 + 0b0110) & 0xF)
        self._check(a - b, (0b1011 - 0b0110) & 0xF)
        self._check(a * b, (0b1011 * 0b0110) & 0xF)
        self._check(-a, (-0b1011) & 0xF)

    def test_bitwise(self):
        a, b = BVVar("a", 4), BVVar("b", 4)
        self._check(a & b, 0b0010)
        self._check(a | b, 0b1111)
        self._check(a ^ b, 0b1101)
        self._check(~a, 0b0100)

    def test_comparisons(self):
        a, b = BVVar("a", 4), BVVar("b", 4)
        self._check(a.eq(b), 0)
        self._check(a.ne(b), 1)
        self._check(a.ult(b), 0)
        self._check(a.slt(b), 1)  # 0b1011 is negative as a signed nibble

    def test_shifts(self):
        a = BVVar("a", 4)
        self._check(a << 1, 0b0110)
        self._check(a >> 2, 0b0010)
        self._check(a.arith_shift_right(1), 0b1101)

    def test_slice_concat_extend(self):
        a = BVVar("a", 4)
        self._check(a[0], 1)
        self._check(a[1:4], 0b101)
        self._check(concat(a, BVConst(2, 0)), 0b101100)
        self._check(a.zext(6), 0b1011)
        self._check(a.sext(6), 0b111011)

    def test_mux_and_reductions(self):
        a, b, s = BVVar("a", 4), BVVar("b", 4), BVVar("s", 1)
        self._check(mux(s, a, b), 0b1011)
        self._check(reduce_or(a), 1)
        self._check(reduce_and(a), 0)
        self._check(reduce_and(BVConst(3, 7)), 1)

    def test_unbound_variable_raises(self):
        with pytest.raises(ExprError):
            evaluate(BVVar("missing", 4), {})


@settings(max_examples=120, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=255),
    b=st.integers(min_value=0, max_value=255),
    shift=st.integers(min_value=0, max_value=9),
)
def test_eval_matches_python_semantics(a, b, shift):
    av, bv = BVVar("a", 8), BVVar("b", 8)
    env = {"a": a, "b": b}
    assert evaluate(av + bv, env) == (a + b) & 0xFF
    assert evaluate(av - bv, env) == (a - b) & 0xFF
    assert evaluate(av & bv, env) == a & b
    assert evaluate(av ^ bv, env) == a ^ b
    assert evaluate(av.ult(bv), env) == int(a < b)
    assert evaluate(av << shift, env) == ((a << shift) & 0xFF if shift < 8 else 0)
    assert evaluate(av >> shift, env) == (a >> shift if shift < 8 else 0)
