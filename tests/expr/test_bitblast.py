"""Cross-checks of the bit-blaster against concrete evaluation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.expr import AIG, BitBlaster, BVConst, BVVar, CNFBuilder, mux
from repro.expr.eval import evaluate
from repro.sat import solve


def _blast_and_solve(expr, env, widths):
    """Blast *expr*, constrain inputs to *env*, and read back its value."""
    blaster = BitBlaster()
    for name, width in widths.items():
        blaster.fresh_input(name, width)
    bits = blaster.blast(expr)
    builder = CNFBuilder(blaster.aig)
    literals = builder.literals(bits)
    for name, width in widths.items():
        for index, aig_literal in enumerate(blaster.lookup(name)):
            cnf_literal = builder.literal(aig_literal)
            wanted = (env[name] >> index) & 1
            builder.cnf.add_unit(cnf_literal if wanted else -cnf_literal)
    result = solve(builder.cnf)
    assert result.satisfiable
    value = 0
    for index, literal in enumerate(literals):
        bit = result.model[abs(literal)]
        if literal < 0:
            bit = not bit
        if bit:
            value |= 1 << index
    return value


class TestAIG:
    def test_constant_folding(self):
        aig = AIG()
        x = aig.add_input("x")
        assert aig.and_gate(x, 1) == x
        assert aig.and_gate(x, 0) == 0
        assert aig.and_gate(x, x) == x
        assert aig.and_gate(x, aig.negate(x)) == 0

    def test_structural_hashing(self):
        aig = AIG()
        x = aig.add_input("x")
        y = aig.add_input("y")
        assert aig.and_gate(x, y) == aig.and_gate(y, x)
        nodes_before = aig.num_nodes
        aig.and_gate(x, y)
        assert aig.num_nodes == nodes_before

    def test_ripple_add(self):
        aig = AIG()
        a_bits = [aig.add_input() for _ in range(4)]
        b_bits = [aig.add_input() for _ in range(4)]
        total, carry = aig.ripple_add(a_bits, b_bits)
        assert len(total) == 4
        assert carry != 0


class TestBitBlastCrossCheck:
    WIDTHS = {"a": 6, "b": 6, "s": 1}

    @settings(max_examples=40, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=63),
        b=st.integers(min_value=0, max_value=63),
        s=st.integers(min_value=0, max_value=1),
    )
    def test_operations_match_evaluation(self, a, b, s):
        av, bv, sv = BVVar("a", 6), BVVar("b", 6), BVVar("s", 1)
        env = {"a": a, "b": b, "s": s}
        expressions = [
            av + bv,
            av - bv,
            av * bv,
            av & bv,
            av ^ bv,
            ~av,
            -av,
            av.eq(bv).zext(6),
            av.ult(bv).zext(6),
            av.slt(bv).zext(6),
            (av << bv[0:3].zext(6)),
            (av >> bv[0:3].zext(6)),
            av.arith_shift_right(BVConst(6, 2)),
            mux(sv, av, bv),
            av[1:5].zext(6),
            av.sext(8)[0:6],
        ]
        for expr in expressions:
            expected = evaluate(expr, env)
            actual = _blast_and_solve(expr, env, self.WIDTHS)
            assert actual == expected, f"mismatch for {expr!r}"

    def test_unbound_variable_raises(self):
        blaster = BitBlaster()
        with pytest.raises(Exception):
            blaster.blast(BVVar("ghost", 4))

    def test_constant_expression_needs_no_inputs(self):
        blaster = BitBlaster()
        bits = blaster.blast(BVConst(4, 0b1010) + BVConst(4, 1))
        builder = CNFBuilder(blaster.aig)
        literals = builder.literals(bits)
        result = solve(builder.cnf)
        assert result.satisfiable
        value = sum(
            1 << i
            for i, lit in enumerate(literals)
            if (result.model[abs(lit)] if lit > 0 else not result.model[abs(lit)])
        )
        assert value == 0b1011
