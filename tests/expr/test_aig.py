"""Tests for the AIG: algebraic rewriting, strashing and cone extraction."""

import itertools
import random

from repro.expr.aig import AIG, AIG_FALSE, AIG_TRUE


def _evaluate(aig: AIG, literal: int, env):
    """Evaluate *literal* under ``env`` (input node -> bool)."""
    node = aig.lit_node(literal)
    if node == 0:
        value = False
    elif aig.is_input(node):
        value = env[node]
    else:
        left, right = aig.node_children(node)
        value = _evaluate(aig, left, env) and _evaluate(aig, right, env)
    return value != aig.lit_inverted(literal)


class TestConstantsAndFolding:
    def test_constants(self):
        aig = AIG()
        a = aig.add_input("a")
        assert aig.and_gate(AIG_FALSE, a) == AIG_FALSE
        assert aig.and_gate(a, AIG_FALSE) == AIG_FALSE
        assert aig.and_gate(AIG_TRUE, a) == a
        assert aig.and_gate(a, AIG_TRUE) == a

    def test_idempotence_on_literals(self):
        aig = AIG()
        a = aig.add_input("a")
        assert aig.and_gate(a, a) == a

    def test_contradiction_on_literals(self):
        aig = AIG()
        a = aig.add_input("a")
        assert aig.and_gate(a, aig.negate(a)) == AIG_FALSE

    def test_double_negation(self):
        aig = AIG()
        a = aig.add_input("a")
        assert aig.negate(aig.negate(a)) == a


class TestStrashing:
    def test_commuted_operands_share_a_node(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        assert aig.and_gate(a, b) == aig.and_gate(b, a)

    def test_identical_call_shares_a_node(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        before = aig.num_nodes
        first = aig.and_gate(a, b)
        assert aig.num_nodes == before + 1
        assert aig.and_gate(a, b) == first
        assert aig.num_nodes == before + 1


class TestTwoLevelRewriting:
    def test_two_level_contradiction(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        ab = aig.and_gate(a, b)
        assert aig.and_gate(ab, aig.negate(a)) == AIG_FALSE
        assert aig.rewrite_stats["contradiction"] >= 1

    def test_two_level_idempotence(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        ab = aig.and_gate(a, b)
        assert aig.and_gate(ab, a) == ab
        assert aig.and_gate(b, ab) == ab
        assert aig.rewrite_stats["idempotence"] >= 2

    def test_absorption(self):
        # !(a & b) & !a  ->  !a
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        nab = aig.negate(aig.and_gate(a, b))
        assert aig.and_gate(nab, aig.negate(a)) == aig.negate(a)
        assert aig.rewrite_stats["absorption"] >= 1

    def test_substitution(self):
        # !(a & b) & a  ->  a & !b
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        nab = aig.negate(aig.and_gate(a, b))
        assert aig.and_gate(nab, a) == aig.and_gate(a, aig.negate(b))
        assert aig.rewrite_stats["substitution"] >= 1

    def test_shared_child_merging(self):
        # (a & b) & (a & c)  ->  (a & b) & c
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        c = aig.add_input("c")
        ab = aig.and_gate(a, b)
        ac = aig.and_gate(a, c)
        assert aig.and_gate(ab, ac) == aig.and_gate(ab, c)
        assert aig.rewrite_stats["shared_child"] >= 1

    def test_random_rewriting_preserves_semantics(self):
        """Truth tables before/after rewriting must agree.

        Random AND/OR/XOR/NOT trees over four inputs are built through the
        rewriting constructor; every literal's truth table is compared to a
        reference computed directly on the operand truth tables.
        """
        rng = random.Random(20260729)
        for _ in range(200):
            aig = AIG()
            inputs = [aig.add_input(f"i{index}") for index in range(4)]
            assignments = list(itertools.product([False, True], repeat=4))
            envs = [
                dict(zip((lit >> 1 for lit in inputs), values))
                for values in assignments
            ]
            # pool of (literal, truth-table) pairs
            pool = [
                (lit, tuple(env[lit >> 1] for env in envs)) for lit in inputs
            ]
            for _ in range(12):
                op = rng.choice(("and", "or", "xor", "not"))
                a_lit, a_tt = rng.choice(pool)
                b_lit, b_tt = rng.choice(pool)
                if op == "not":
                    lit = aig.negate(a_lit)
                    table = tuple(not v for v in a_tt)
                elif op == "and":
                    lit = aig.and_gate(a_lit, b_lit)
                    table = tuple(x and y for x, y in zip(a_tt, b_tt))
                elif op == "or":
                    lit = aig.or_gate(a_lit, b_lit)
                    table = tuple(x or y for x, y in zip(a_tt, b_tt))
                else:
                    lit = aig.xor_gate(a_lit, b_lit)
                    table = tuple(x != y for x, y in zip(a_tt, b_tt))
                actual = tuple(_evaluate(aig, lit, env) for env in envs)
                assert actual == table
                pool.append((lit, table))


class TestConeExtraction:
    def test_cone_of_input_is_itself(self):
        aig = AIG()
        a = aig.add_input("a")
        assert aig.cone_of([a]) == {a >> 1}
        assert aig.cone_inputs([a]) == {a >> 1}

    def test_cone_excludes_unreachable_logic(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        c = aig.add_input("c")
        ab = aig.and_gate(a, b)
        bc = aig.and_gate(b, c)  # not in the cone of ab
        cone = aig.cone_of([ab])
        assert ab >> 1 in cone
        assert bc >> 1 not in cone
        assert c >> 1 not in cone
        assert aig.cone_inputs([ab]) == {a >> 1, b >> 1}

    def test_cone_size_counts_and_nodes_only(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        c = aig.add_input("c")
        abc = aig.and_gate(aig.and_gate(a, b), c)
        assert aig.cone_size([abc]) == 2
        assert aig.cone_size([a]) == 0

    def test_cone_of_constant_is_empty(self):
        aig = AIG()
        assert aig.cone_of([AIG_FALSE]) == set()
        assert aig.cone_of([AIG_TRUE]) == set()
