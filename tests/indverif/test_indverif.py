"""Tests for the industrial verification flow baselines."""

import pytest

from repro.indverif import (
    CRSConfig,
    ConstrainedRandomSim,
    OCSFVChecker,
    default_directed_suite,
)
from repro.isa import TINY_PROFILE
from repro.uarch.versions import version_by_name


class TestDirectedTests:
    def test_directed_suite_passes_on_clean_designs(self):
        suite = default_directed_suite(TINY_PROFILE)
        for version_name in ("B.v6", "C.v6"):
            version = version_by_name(version_name)
            results = suite.run_all(version, with_extension=version.with_extension)
            assert results, "suite must contain tests"
            assert not suite.detected_bug(results), [
                (r.test_name, r.failures) for r in results if not r.passed
            ]

    def test_directed_suite_misses_the_seeded_bugs(self):
        # The paper's DST is not meant to be comprehensive; our directed
        # programs do not produce the corner-case triggers, so buggy versions
        # pass too (bugs found by designers were never recorded).
        suite = default_directed_suite(TINY_PROFILE)
        for version_name in ("A.v3", "A.v6", "B.v2"):
            version = version_by_name(version_name)
            results = suite.run_all(version, with_extension=version.with_extension)
            assert not suite.detected_bug(results)

    def test_extension_test_skipped_for_design_a(self):
        suite = default_directed_suite(TINY_PROFILE)
        results_a = suite.run_all(version_by_name("A.v8"), with_extension=False)
        results_b = suite.run_all(version_by_name("B.v6"), with_extension=True)
        assert len(results_b) == len(results_a) + 1


class TestOCSFV:
    def test_ocsfv_misses_single_instruction_bugs(self):
        # A.v6 contains the SRA zero-fill bug; the OCS-FV property set (zero
        # operands, no carry checks) does not see it -- the paper's "human
        # error / over-constraining" failure mode.
        checker = OCSFVChecker("A.v6", arch=TINY_PROFILE)
        result = checker.check_all(instructions=["SRA", "SRL", "ADD", "BNZ"])
        assert not result.detected_bug

    def test_ocsfv_misses_spec_bug(self):
        checker = OCSFVChecker("A.v8", arch=TINY_PROFILE)
        result = checker.check_all(instructions=["CMPI", "CMP"])
        assert not result.detected_bug


class TestCRS:
    def test_crs_clean_design_no_mismatches(self):
        crs = ConstrainedRandomSim(
            "B.v6",
            arch=TINY_PROFILE,
            config=CRSConfig(num_programs=6, program_length=16, seed=5),
        )
        result = crs.run()
        assert not result.detected_bug
        assert result.instructions_committed > 0
        assert result.coverage is not None
        assert result.coverage.opcode_coverage > 0.3

    def test_crs_detects_rtl_interaction_bug(self):
        crs = ConstrainedRandomSim(
            "A.v3",
            arch=TINY_PROFILE,
            config=CRSConfig(num_programs=30, program_length=24, seed=1),
        )
        result = crs.run()
        assert result.detected_bug

    def test_crs_blind_to_spec_bug(self):
        # A.v8 carries only the specification bug; the scoreboard's reference
        # is the (amended, matching) specification, so nothing is flagged.
        crs = ConstrainedRandomSim(
            "A.v8",
            arch=TINY_PROFILE,
            config=CRSConfig(num_programs=10, program_length=20, seed=3),
        )
        assert not crs.run().detected_bug
