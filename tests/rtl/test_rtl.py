"""Tests for circuit construction, elaboration and simulation."""

import pytest

from repro.expr import BVConst, BVVar, mux
from repro.rtl import Circuit, RTLBuildError, Simulator, elaborate
from repro.rtl.simulator import AssumptionViolation


def _counter_circuit(width: int = 4) -> Circuit:
    circuit = Circuit("counter")
    enable = circuit.input("enable", 1)
    count = circuit.register("count", width, reset=0)
    count.next = mux(enable, count.q + BVConst(width, 1), count.q)
    circuit.output("value", count.q)
    return circuit


class TestCircuitConstruction:
    def test_duplicate_names_rejected(self):
        circuit = Circuit("c")
        circuit.input("x", 1)
        with pytest.raises(RTLBuildError):
            circuit.register("x", 4)

    def test_register_width_mismatch_rejected(self):
        circuit = Circuit("c")
        reg = circuit.register("r", 4)
        with pytest.raises(RTLBuildError):
            reg.next = BVVar("somewire", 8)

    def test_undriven_signal_detected_at_elaboration(self):
        circuit = Circuit("c")
        reg = circuit.register("r", 4)
        reg.next = BVVar("ghost", 4)
        with pytest.raises(RTLBuildError):
            elaborate(circuit)

    def test_hold_when_no_next(self):
        circuit = Circuit("c")
        circuit.register("r", 4, reset=5)
        design = elaborate(circuit)
        simulator = Simulator(design)
        simulator.step({})
        assert simulator.peek("r") == 5

    def test_memory_read_write(self):
        circuit = Circuit("m")
        address = circuit.input("address", 2)
        data = circuit.input("data", 8)
        write = circuit.input("write", 1)
        memory = circuit.memory("mem", 4, 8)
        memory.write(address, data, write)
        circuit.output("read_value", memory.read(address))
        design = elaborate(circuit)
        simulator = Simulator(design)
        simulator.step({"address": 2, "data": 0xAB, "write": 1})
        assert simulator.peek("mem[2]") == 0xAB
        assert (
            simulator.output("read_value", {"address": 2, "data": 0, "write": 0})
            == 0xAB
        )

    def test_flip_flop_count(self):
        design = elaborate(_counter_circuit(6))
        assert design.num_flip_flops == 6


class TestSimulator:
    def test_counter_counts_when_enabled(self):
        design = elaborate(_counter_circuit())
        simulator = Simulator(design)
        for _ in range(3):
            simulator.step({"enable": 1})
        simulator.step({"enable": 0})
        assert simulator.peek("count") == 3
        assert simulator.cycle == 4

    def test_missing_input_rejected(self):
        design = elaborate(_counter_circuit())
        simulator = Simulator(design)
        with pytest.raises(KeyError):
            simulator.step({})

    def test_reset_restores_initial_state(self):
        design = elaborate(_counter_circuit())
        simulator = Simulator(design)
        simulator.step({"enable": 1})
        simulator.reset()
        assert simulator.peek("count") == 0
        assert simulator.cycle == 0

    def test_poke_masks_value(self):
        design = elaborate(_counter_circuit())
        simulator = Simulator(design)
        simulator.poke("count", 0x1F)
        assert simulator.peek("count") == 0xF

    def test_assumption_violation_detected(self):
        circuit = _counter_circuit()
        circuit.assume("never_disable", BVVar("enable", 1).eq(BVConst(1, 1)))
        design = elaborate(circuit)
        simulator = Simulator(design)
        simulator.step({"enable": 1})
        with pytest.raises(AssumptionViolation):
            simulator.step({"enable": 0})

    def test_waveform_capture_and_vcd(self):
        design = elaborate(_counter_circuit())
        simulator = Simulator(design, record_waveform=True)
        simulator.run([{"enable": 1}] * 3)
        assert len(simulator.waveform) == 3
        table = simulator.waveform.as_table(["count"])
        assert "count" in table
        vcd = simulator.waveform.to_vcd(["count"])
        assert "$enddefinitions" in vcd
