"""BMC engine + distributed proof engine: verdict equivalence, stats, replay."""

import pytest

from repro.bmc import BMCProblem, BMCStatus, BoundedModelChecker, SafetyProperty
from repro.dist import SplitConfig
from repro.expr import BVConst, BVVar, mux
from repro.rtl import Circuit, elaborate


def _counter_design(width: int = 6):
    circuit = Circuit("dist_counter")
    enable = circuit.input("enable", 1)
    count = circuit.register("count", width, reset=0)
    count.next = mux(enable, count.q + BVConst(width, 1), count.q)
    circuit.output("value", count.q)
    return elaborate(circuit), width


def _problem(prop_value, width=6, **kwargs):
    design, _ = _counter_design(width)
    prop = SafetyProperty(
        f"never{prop_value}",
        BVVar("count", width).ne(BVConst(width, prop_value)),
    )
    return BMCProblem(design=design, prop=prop, **kwargs)


class TestVerdictEquivalence:
    @pytest.mark.parametrize("strategy", ["auto", "window", "lookahead", "portfolio"])
    def test_violating_run_matches_sequential(self, strategy):
        sequential = BoundedModelChecker(_problem(5, max_bound=8)).run()
        distributed = BoundedModelChecker(
            _problem(
                5,
                max_bound=8,
                split=SplitConfig(workers=1, strategy=strategy),
            )
        ).run()
        assert sequential.status is BMCStatus.VIOLATION
        assert distributed.status is BMCStatus.VIOLATION
        # Dense schedules agree on the first violating bound: it is a
        # semantic property of the design, not of the solver.
        assert distributed.bound_reached == sequential.bound_reached
        # Both counterexamples replayed through the simulator and violated
        # the property (the engine raises otherwise); equal length because
        # dense windows are one frame wide.
        assert (
            distributed.counterexample_length
            == sequential.counterexample_length
        )

    @pytest.mark.parametrize("strategy", ["auto", "window", "lookahead", "portfolio"])
    def test_safe_run_matches_sequential(self, strategy):
        sequential = BoundedModelChecker(_problem(63, max_bound=6)).run()
        distributed = BoundedModelChecker(
            _problem(
                63,
                max_bound=6,
                split=SplitConfig(workers=1, strategy=strategy),
            )
        ).run()
        assert sequential.status is BMCStatus.NO_VIOLATION_WITHIN_BOUND
        assert distributed.status is BMCStatus.NO_VIOLATION_WITHIN_BOUND
        assert distributed.frames_proven == sequential.frames_proven

    def test_two_workers_match_sequential(self):
        sequential = BoundedModelChecker(
            _problem(63, bound_schedule=[6])
        ).run()
        distributed = BoundedModelChecker(
            _problem(63, bound_schedule=[6], split=SplitConfig(workers=2))
        ).run()
        assert distributed.status is sequential.status

    def test_single_query_schedule_with_split(self):
        distributed = BoundedModelChecker(
            _problem(5, bound_schedule=[8], split=SplitConfig(workers=1))
        ).run()
        assert distributed.status is BMCStatus.VIOLATION
        assert distributed.counterexample is not None


class TestDistStatsPlumbing:
    def test_per_bound_cube_stats_recorded(self):
        result = BoundedModelChecker(
            _problem(63, max_bound=4, split=SplitConfig(workers=1))
        ).run()
        queried = [s for s in result.per_bound_stats if s.verdict != "skipped"]
        assert queried
        assert all(s.dist is not None for s in queried)
        assert result.cubes_solved == sum(
            s.dist.cubes_total for s in queried
        )
        assert result.cubes_solved > len(queried)  # actually split

    def test_sequential_runs_have_no_dist_stats(self):
        result = BoundedModelChecker(_problem(63, max_bound=4)).run()
        assert all(s.dist is None for s in result.per_bound_stats)
        assert result.cubes_solved == 0

    def test_zero_budget_still_accepts_free_proofs(self):
        # The counter property constant-folds, so every cube refutes with
        # zero conflicts: a zero conflict budget must not discard a proof
        # that cost nothing (sequential and parallel schedulers agree).
        result = BoundedModelChecker(
            _problem(
                63,
                bound_schedule=[6],
                max_conflicts_per_query=0,
                split=SplitConfig(workers=1, cube_conflict_budget=0),
            )
        ).run()
        assert result.status is BMCStatus.NO_VIOLATION_WITHIN_BOUND
        assert result.frames_proven == 6
        assert result.per_bound_stats[-1].verdict == "unsat"
        assert result.total_conflicts == 0

    def test_symbolic_initial_state_replays_through_split(self):
        # The solver-chosen symbolic start state must survive the worker
        # round-trip: the replayed counterexample seeds from the model.
        problem = _problem(
            13,
            bound_schedule=[1],
            initial_state={"count": "symbolic"},
            split=SplitConfig(workers=1),
        )
        result = BoundedModelChecker(problem).run()
        assert result.status is BMCStatus.VIOLATION
        assert result.counterexample is not None


class TestDeterminism:
    def test_single_worker_distributed_runs_are_identical(self):
        def run():
            result = BoundedModelChecker(
                _problem(
                    63,
                    max_bound=5,
                    split=SplitConfig(workers=1, cube_conflict_budget=20),
                )
            ).run()
            return [
                (
                    s.bound,
                    s.verdict,
                    s.conflicts,
                    s.decisions,
                    s.propagations,
                    tuple(
                        (c.literals, c.verdict, c.conflicts, c.depth)
                        for c in (s.dist.cubes if s.dist else ())
                    ),
                )
                for s in result.per_bound_stats
            ]

        assert run() == run()
