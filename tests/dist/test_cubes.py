"""Cube-generator soundness: every cube set must partition the space.

The distributed proof's UNSAT merge ("all cubes UNSAT => query UNSAT") is
only sound when the disjunction of the cubes is a tautology over the split
variables, and work is only non-duplicated when they are pairwise disjoint.
These tests check both properties by brute-force enumeration
(:func:`repro.dist.cubes.validate_partition`) over randomly generated split
configurations, property-style via hypothesis.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.cubes import (
    Cube,
    binary_cubes,
    ladder_cubes,
    product_cubes,
    split_cube,
    validate_partition,
)


@st.composite
def _distinct_vars(draw, min_size=1, max_size=6):
    return draw(
        st.lists(
            st.integers(min_value=1, max_value=40),
            min_size=min_size,
            max_size=max_size,
            unique=True,
        )
    )


@st.composite
def _distinct_literals(draw, min_size=1, max_size=6):
    variables = draw(_distinct_vars(min_size=min_size, max_size=max_size))
    signs = draw(
        st.lists(
            st.sampled_from([1, -1]),
            min_size=len(variables),
            max_size=len(variables),
        )
    )
    return [sign * var for sign, var in zip(signs, variables)]


class TestPartitionProperty:
    @settings(max_examples=60, deadline=None)
    @given(variables=_distinct_vars(), depth=st.integers(0, 6))
    def test_binary_cubes_partition(self, variables, depth):
        cubes = binary_cubes(variables, depth)
        assert len(cubes) == 2 ** min(depth, len(variables))
        validate_partition(cubes)

    @settings(max_examples=60, deadline=None)
    @given(literals=_distinct_literals())
    def test_ladder_cubes_partition(self, literals):
        cubes = ladder_cubes(literals)
        assert len(cubes) == len(literals) + 1
        validate_partition(cubes)

    @settings(max_examples=40, deadline=None)
    @given(
        ladder_lits=_distinct_literals(max_size=4),
        tree_vars=_distinct_vars(max_size=3),
        depth=st.integers(0, 3),
    )
    def test_product_of_partitions_partitions(
        self, ladder_lits, tree_vars, depth
    ):
        # The two axes must use disjoint variables, as the engine guarantees
        # (window roots are excluded from look-ahead candidates).
        ladder_vars = {abs(lit) for lit in ladder_lits}
        tree_vars = [v + 50 for v in tree_vars if v + 50 not in ladder_vars]
        cubes = product_cubes(
            ladder_cubes(ladder_lits), binary_cubes(tree_vars, depth)
        )
        validate_partition(cubes)

    @settings(max_examples=40, deadline=None)
    @given(literals=_distinct_literals(max_size=4), index=st.integers(0, 10))
    def test_resplit_preserves_the_partition(self, literals, index):
        cubes = list(ladder_cubes(literals))
        victim = cubes.pop(index % len(cubes))
        fresh_var = max(abs(lit) for lit in literals) + 1
        left, right = split_cube(victim, fresh_var)
        assert left.depth == victim.depth + 1
        validate_partition(cubes + [left, right])


class TestValidatePartition:
    def test_rejects_uncovered_space(self):
        with pytest.raises(AssertionError, match="not a tautology"):
            validate_partition([Cube((1,)), Cube((-1, 2))])

    def test_rejects_overlap(self):
        with pytest.raises(AssertionError, match="overlap"):
            validate_partition([Cube((1,)), Cube((-1,)), Cube((2,))])

    def test_refuses_exponential_blowups(self):
        cubes = [Cube(tuple(range(1, 25)))]
        with pytest.raises(ValueError, match="2\\^24"):
            validate_partition(cubes)


class TestSplitCube:
    def test_rejects_already_constrained_variable(self):
        with pytest.raises(ValueError, match="already constrains"):
            split_cube(Cube((3, -4)), 4)

    def test_rejects_non_variable(self):
        with pytest.raises(ValueError, match="positive variable"):
            split_cube(Cube(()), -2)

    def test_empty_cube_binary_split_is_total(self):
        validate_partition(list(split_cube(Cube(()), 7)))
