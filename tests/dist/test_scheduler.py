"""Work scheduler, portfolio runner and split-variable selection."""

import dataclasses

import pytest

from repro.dist.cubes import Cube, binary_cubes, ladder_cubes
from repro.dist.portfolio import (
    DIVERSE_CONFIGS,
    PortfolioConfig,
    solve_portfolio,
)
from repro.dist.scheduler import (
    SplitConfig,
    SplitQuery,
    WorkScheduler,
)
from repro.sat.solver import SolverStatus

# x1|x2 and x3|x4 but every cross pair forbidden: UNSAT.
UNSAT_CLAUSES = [[1, 2], [3, 4], [-1, -3], [-1, -4], [-2, -3], [-2, -4]]
# Satisfiable with 3 forced true whenever 1 or 2 holds.
SAT_CLAUSES = [[1, 2], [-1, 3], [-2, 3]]


def _query(clauses, num_vars, cubes, **kwargs):
    return SplitQuery(
        clauses=[list(c) for c in clauses],
        num_vars=num_vars,
        cubes=cubes,
        **kwargs,
    )


class TestSplitConfigValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            SplitConfig(workers=0)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            SplitConfig(strategy="divine-intervention")

    def test_rejects_empty_configs(self):
        with pytest.raises(ValueError, match="configs"):
            SplitConfig(configs=())


class TestSequentialScheduler:
    def test_all_cubes_unsat_means_unsat(self):
        query = _query(UNSAT_CLAUSES, 4, binary_cubes([1, 2], 2))
        result = WorkScheduler(SplitConfig(workers=1)).solve(query)
        assert result.status is SolverStatus.UNSAT
        assert result.stats.cubes_total == 4
        assert all(c.verdict == "unsat" for c in result.stats.cubes)

    def test_sat_cube_wins_with_model(self):
        query = _query(SAT_CLAUSES, 3, ladder_cubes([1, 2]))
        result = WorkScheduler(SplitConfig(workers=1)).solve(query)
        assert result.status is SolverStatus.SAT
        assert result.model is not None
        for clause in SAT_CLAUSES:
            assert any((l > 0) == result.model[abs(l)] for l in clause)

    def test_incremental_reuse_extends_previous_query(self):
        # The inline solver persists across incremental queries: the second
        # query appends clauses to the first's list and only the tail is
        # fed, yet the verdict must match a from-scratch solve.
        scheduler = WorkScheduler(SplitConfig(workers=1))
        first = _query(SAT_CLAUSES, 3, ladder_cubes([1, 2]), incremental=True)
        assert scheduler.solve(first).status is SolverStatus.SAT
        grown = _query(
            SAT_CLAUSES + [[-3]],  # forces UNSAT (1|2 forces 3)
            3,
            ladder_cubes([1, 2]),
            incremental=True,
        )
        assert scheduler.solve(grown).status is SolverStatus.UNSAT

    def test_non_incremental_query_invalidates_inline_solver_cache(self):
        # Regression: a non-incremental query between two incremental ones
        # must drop the cached solver.  Without the invalidation, the third
        # query would reuse the solver built for the *first* formula (which
        # contains [1]) and feed only its clause tail, answering UNSAT for
        # the satisfiable formula [[-1], [-1]].
        scheduler = WorkScheduler(SplitConfig(workers=1))
        q1 = _query([[1]], 1, [Cube(literals=())], incremental=True)
        assert scheduler.solve(q1).status is SolverStatus.SAT
        q2 = _query([[-1]], 1, [Cube(literals=())], incremental=False)
        assert scheduler.solve(q2).status is SolverStatus.SAT
        q3 = _query([[-1], [-1]], 1, [Cube(literals=())], incremental=True)
        result = scheduler.solve(q3)
        assert result.status is SolverStatus.SAT
        assert result.model is not None and result.model[1] is False

    def test_base_assumptions_apply_to_every_cube(self):
        # Assuming -3 refutes every cube: [1,2] forces 1 or 2, either of
        # which forces 3.  A cube ignoring the base assumption would answer
        # SAT, so the UNSAT merge proves the assumptions reached all cubes.
        query = _query(
            SAT_CLAUSES, 3, ladder_cubes([1, 2]), assumptions=[-3]
        )
        result = WorkScheduler(SplitConfig(workers=1)).solve(query)
        assert result.status is SolverStatus.UNSAT
        assert all(c.verdict == "unsat" for c in result.stats.cubes)

    def test_budget_overrun_resplits_and_still_proves(self):
        query = _query(
            UNSAT_CLAUSES,
            4,
            [Cube(())],
            resplit_vars=[1, 2, 3, 4],
        )
        config = SplitConfig(workers=1, cube_conflict_budget=0)
        result = WorkScheduler(config).solve(query)
        assert result.status is SolverStatus.UNSAT
        assert result.stats.resplits > 0
        assert any(c.depth > 0 for c in result.stats.cubes)

    def test_global_conflict_budget_yields_unknown(self):
        query = _query(
            UNSAT_CLAUSES, 4, [Cube(())], max_conflicts=0
        )
        config = SplitConfig(workers=1, cube_conflict_budget=0)
        result = WorkScheduler(config).solve(query)
        assert result.status is SolverStatus.UNKNOWN

    def test_single_worker_runs_are_deterministic(self):
        def run():
            query = _query(
                UNSAT_CLAUSES,
                4,
                binary_cubes([1, 2], 2),
                resplit_vars=[3, 4],
            )
            result = WorkScheduler(
                SplitConfig(workers=1, cube_conflict_budget=1)
            ).solve(query)
            return (
                result.status,
                [
                    (c.literals, c.verdict, c.depth, c.conflicts, c.decisions)
                    for c in result.stats.cubes
                ],
            )

        assert run() == run()


class TestParallelScheduler:
    def test_unsat_merge_across_workers(self):
        query = _query(UNSAT_CLAUSES, 4, binary_cubes([1, 2], 2))
        result = WorkScheduler(SplitConfig(workers=2)).solve(query)
        assert result.status is SolverStatus.UNSAT
        assert result.stats.cubes_total == 4

    def test_sat_model_from_any_worker_satisfies_formula(self):
        query = _query(SAT_CLAUSES, 3, ladder_cubes([1, 2]))
        result = WorkScheduler(SplitConfig(workers=2)).solve(query)
        assert result.status is SolverStatus.SAT
        for clause in SAT_CLAUSES:
            assert any((l > 0) == result.model[abs(l)] for l in clause)

    def test_parallel_resplit_terminates(self):
        query = _query(
            UNSAT_CLAUSES, 4, [Cube(())], resplit_vars=[1, 2, 3, 4]
        )
        config = SplitConfig(workers=2, cube_conflict_budget=0)
        result = WorkScheduler(config).solve(query)
        assert result.status is SolverStatus.UNSAT
        assert result.stats.resplits > 0

    def test_clause_sharing_disabled_still_correct(self):
        query = _query(UNSAT_CLAUSES, 4, binary_cubes([1, 2], 2))
        config = SplitConfig(workers=2, share_clauses=False)
        result = WorkScheduler(config).solve(query)
        assert result.status is SolverStatus.UNSAT


class TestPortfolio:
    def test_race_finds_unsat(self):
        outcome = solve_portfolio(
            [list(c) for c in UNSAT_CLAUSES], 4, workers=2
        )
        assert outcome.status is SolverStatus.UNSAT
        assert outcome.winner in {c.name for c in DIVERSE_CONFIGS}

    def test_race_finds_sat_model(self):
        outcome = solve_portfolio(
            [list(c) for c in SAT_CLAUSES], 3, workers=3
        )
        assert outcome.status is SolverStatus.SAT
        for clause in SAT_CLAUSES:
            assert any((l > 0) == outcome.model[abs(l)] for l in clause)

    def test_single_worker_race_is_inline_and_deterministic(self):
        def run():
            return solve_portfolio(
                [list(c) for c in UNSAT_CLAUSES], 4, workers=1
            )

        first, second = run(), run()
        assert first.status is SolverStatus.UNSAT
        assert first.conflicts == second.conflicts
        assert first.winner == second.winner == DIVERSE_CONFIGS[0].name

    def test_preprocessed_personality_extends_models(self):
        config = PortfolioConfig("pre", preprocess=True)
        # Freeze nothing: Tseitin-style var 3 gets eliminated, and the
        # returned model must still assign it correctly.
        outcome = solve_portfolio(
            [list(c) for c in SAT_CLAUSES],
            3,
            configs=(config,),
            workers=1,
        )
        assert outcome.status is SolverStatus.SAT
        for clause in SAT_CLAUSES:
            assert any((l > 0) == outcome.model[abs(l)] for l in clause)

    def test_unknown_only_when_every_config_exhausts(self):
        # Preprocess-free personalities only: the default set's
        # "preprocessed" entry refutes this tiny formula during variable
        # elimination, before the conflict budget is ever consulted.
        outcome = solve_portfolio(
            [list(c) for c in UNSAT_CLAUSES],
            4,
            configs=[c for c in DIVERSE_CONFIGS if not c.preprocess],
            workers=2,
            max_conflicts=0,
        )
        assert outcome.status is SolverStatus.UNKNOWN

    def test_preprocessed_personality_raced_at_two_workers(self):
        # Regression for the default order: index 1 must be the (only)
        # preprocessing personality so BCE/BVE run in every >=2-worker
        # race, and index 0 must stay preprocess-free for the inline
        # scheduler path's incremental solver reuse.
        assert not DIVERSE_CONFIGS[0].preprocess
        assert DIVERSE_CONFIGS[1].preprocess and DIVERSE_CONFIGS[1].blocked
        outcome = solve_portfolio(
            [list(c) for c in UNSAT_CLAUSES],
            4,
            workers=2,
            max_conflicts=0,
        )
        # The zero-budget race is decided by preprocessing alone.
        assert outcome.status is SolverStatus.UNSAT
        assert outcome.winner == "preprocessed"

    def test_scheduler_portfolio_strategy(self):
        query = _query(UNSAT_CLAUSES, 4, [Cube(())])
        result = WorkScheduler(
            SplitConfig(workers=2, strategy="portfolio")
        ).solve(query)
        assert result.status is SolverStatus.UNSAT
        assert result.stats.winner is not None


class TestWorkerPersonalities:
    def test_personalities_are_distinct(self):
        names = [c.name for c in DIVERSE_CONFIGS]
        assert len(names) == len(set(names))
        assert len(
            {
                dataclasses.astuple(
                    dataclasses.replace(c, name="x")
                )
                for c in DIVERSE_CONFIGS
            }
        ) == len(DIVERSE_CONFIGS)

    def test_blocked_clause_personality_repairs_models(self):
        config = PortfolioConfig("pre-bce", preprocess=True, blocked=True)
        outcome = solve_portfolio(
            [list(c) for c in SAT_CLAUSES],
            3,
            configs=(config,),
            workers=1,
        )
        assert outcome.status is SolverStatus.SAT
        for clause in SAT_CLAUSES:
            assert any((l > 0) == outcome.model[abs(l)] for l in clause)
