"""Sequential vs. distributed Symbolic QED: verdicts must never diverge.

The distributed proof engine is a pure scheduling change -- cube partition,
worker pool, clause sharing -- so on every one of the sixteen design
versions of the case study it must return exactly the verdict of the
sequential engine, and its counterexamples must replay (the harness
interprets them through the same simulator path).  Small bounds keep the
sweep inside the tier-1 budget; the detection SAT side is exercised by the
A.v5 QED-mem bug, whose counterexample fits the small-bound regime.
"""

import json

import pytest

from repro.dist import SplitConfig
from repro.qed import QEDMode, SymbolicQED
from repro.uarch.versions import ALL_VERSIONS

#: The campaign's baseline focus set: legal in EDDI-V mode on every version.
FOCUS = ["LDI", "MOV", "INC", "ADD"]
SMALL_BOUND = 4


class TestAllVersionsAgree:
    @pytest.mark.parametrize(
        "version", ALL_VERSIONS, ids=[v.name for v in ALL_VERSIONS]
    )
    def test_sequential_and_distributed_verdicts_match(self, version):
        harness = SymbolicQED(
            version, mode=QEDMode.EDDIV, focus_opcodes=FOCUS
        )
        sequential = harness.check(max_bound=SMALL_BOUND)
        distributed = harness.check(
            max_bound=SMALL_BOUND, split=SplitConfig(workers=1)
        )
        assert distributed.found_violation == sequential.found_violation
        assert (
            distributed.bmc_result.frames_proven
            == sequential.bmc_result.frames_proven
        )
        assert distributed.cubes_solved > 0
        assert sequential.cubes_solved == 0


class TestDetectionSide:
    def test_qed_mem_bug_detected_by_both_engines(self):
        harness = SymbolicQED(
            "A.v5", mode=QEDMode.EDDIV_MEM, tracked_registers=(0,)
        )
        sequential = harness.check(max_bound=9)
        distributed = harness.check(max_bound=9, split=SplitConfig(workers=1))
        assert sequential.found_violation
        assert distributed.found_violation
        # Equivalent counterexamples after replay: both traces came back
        # through the simulator and were interpreted as QED failures.
        assert sequential.counterexample is not None
        assert distributed.counterexample is not None
        assert (
            distributed.counterexample.length_cycles
            <= distributed.bmc_result.bound_reached
        )


class TestDistributedDeterminism:
    def test_single_worker_qed_run_is_byte_identical(self):
        def run():
            harness = SymbolicQED(
                "B.v6", mode=QEDMode.EDDIV, focus_opcodes=FOCUS
            )
            result = harness.check(
                max_bound=3, split=SplitConfig(workers=1)
            )
            rows = []
            for stats in result.per_bound_stats:
                cubes = (
                    [
                        [
                            list(c.literals),
                            c.verdict,
                            c.depth,
                            c.conflicts,
                            c.decisions,
                            c.propagations,
                            c.learned_clauses,
                        ]
                        for c in stats.dist.cubes
                    ]
                    if stats.dist
                    else None
                )
                rows.append(
                    [stats.bound, stats.verdict, stats.conflicts, cubes]
                )
            return json.dumps(rows, sort_keys=True)

        assert run() == run()


class TestDynamicResplitting:
    def test_tiny_cube_budget_resplits_but_verdict_stands(self):
        harness = SymbolicQED(
            "B.v6", mode=QEDMode.EDDIV, focus_opcodes=FOCUS
        )
        reference = harness.check(max_bound=SMALL_BOUND)
        squeezed = harness.check(
            max_bound=SMALL_BOUND,
            split=SplitConfig(
                workers=1, cube_conflict_budget=10, max_resplit_depth=3
            ),
        )
        assert squeezed.found_violation == reference.found_violation
        assert squeezed.cubes_resplit > 0


class TestConflictBudgetUnknown:
    def test_exhausted_budget_yields_unknown_not_false_proof(self):
        # B.v6 EDDI-V at bound 4 needs real conflicts (unlike the folding
        # counter designs), so a 1-conflict global budget must end UNKNOWN
        # with the final window unproven -- never a fake proof.
        harness = SymbolicQED(
            "B.v6", mode=QEDMode.EDDIV, focus_opcodes=FOCUS
        )
        result = harness.check(
            max_bound=SMALL_BOUND,
            single_query=False,
            max_conflicts_per_query=1,
            split=SplitConfig(workers=1, cube_conflict_budget=1),
        )
        bmc = result.bmc_result
        assert not result.found_violation
        assert bmc.frames_proven < SMALL_BOUND
        assert any(s.verdict == "unknown" for s in bmc.per_bound_stats)
