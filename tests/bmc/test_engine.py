"""Tests for the bounded model checking engine."""

import pytest

from repro.bmc import BMCProblem, BMCStatus, BoundedModelChecker, SafetyProperty
from repro.bmc import engine as engine_module
from repro.bmc.engine import check_property
from repro.bmc.property import Assumption
from repro.bmc.unroller import SYMBOLIC, Unroller
from repro.expr import BVConst, BVVar, mux
from repro.expr.cnfgen import CNFBuilder
from repro.rtl import Circuit, elaborate
from repro.sat.solver import CDCLSolver


def _counter_design(width: int = 4):
    circuit = Circuit("counter")
    enable = circuit.input("enable", 1)
    count = circuit.register("count", width, reset=0)
    count.next = mux(enable, count.q + BVConst(width, 1), count.q)
    circuit.output("value", count.q)
    return elaborate(circuit)


class TestUnroller:
    def test_frames_accumulate(self):
        unroller = Unroller(_counter_design())
        unroller.unroll(3)
        assert unroller.num_frames == 3
        assert "enable" in unroller.frames[2].inputs

    def test_symbolic_initial_state_creates_inputs(self):
        design = _counter_design()
        unroller = Unroller(design, initial_state={"count": SYMBOLIC})
        unroller.unroll(1)
        assert unroller.aig.num_inputs >= design.inputs["enable"] + 4

    def test_blast_at_missing_frame_rejected(self):
        unroller = Unroller(_counter_design())
        with pytest.raises(IndexError):
            unroller.blast_at_frame(BVVar("count", 4), 0)


class TestEngine:
    def test_violation_found_at_expected_depth(self):
        design = _counter_design()
        prop = SafetyProperty("never3", BVVar("count", 4).ne(BVConst(4, 3)))
        result = check_property(design, prop, max_bound=8)
        assert result.status is BMCStatus.VIOLATION
        assert result.counterexample_length == 4
        assert result.counterexample.state_at(3, "count") == 3

    def test_unreachable_value_is_not_violated(self):
        design = _counter_design()
        prop = SafetyProperty("never9", BVVar("count", 4).ne(BVConst(4, 9)))
        result = check_property(design, prop, max_bound=5)
        assert result.status is BMCStatus.NO_VIOLATION_WITHIN_BOUND

    def test_assumptions_constrain_search(self):
        design = _counter_design()
        prop = SafetyProperty("never2", BVVar("count", 4).ne(BVConst(4, 2)))
        never_enable = Assumption("no_enable", BVVar("enable", 1).eq(BVConst(1, 0)))
        result = check_property(
            design, prop, assumptions=[never_enable], max_bound=6
        )
        assert result.status is BMCStatus.NO_VIOLATION_WITHIN_BOUND

    def test_any_frame_mode_matches_first_mode(self):
        design = _counter_design()
        prop = SafetyProperty("never3", BVVar("count", 4).ne(BVConst(4, 3)))
        problem = BMCProblem(
            design=design,
            prop=prop,
            max_bound=8,
            violation_mode="any",
            bound_schedule=[8],
        )
        result = BoundedModelChecker(problem).run()
        assert result.status is BMCStatus.VIOLATION
        # The trace is truncated at the first violating cycle of the chosen
        # run (the "any" mode does not minimise the prefix, so the length may
        # exceed the minimal 4-cycle counterexample but never the bound).
        trace = result.counterexample
        assert trace.length <= 8
        assert trace.state_at(trace.length - 1, "count") == 3

    def test_property_over_outputs(self):
        design = _counter_design()
        prop = SafetyProperty("output_small", BVVar("value", 4).ult(BVConst(4, 2)))
        result = check_property(design, prop, max_bound=6)
        assert result.found_violation
        assert result.counterexample_length == 3

    def test_invalid_violation_mode_rejected(self):
        design = _counter_design()
        prop = SafetyProperty("p", BVVar("count", 4).ne(BVConst(4, 1)))
        with pytest.raises(ValueError):
            BMCProblem(design=design, prop=prop, violation_mode="sometimes")

    def test_sparse_schedule_covers_skipped_frames(self):
        # Regression: with the per-bound "property holds before the last
        # frame" units, a sparse schedule of [2, 8] silently skipped the
        # violation at frame 3 (count == 3); the windowed incremental
        # encoding must find it.
        design = _counter_design()
        prop = SafetyProperty("never3", BVVar("count", 4).ne(BVConst(4, 3)))
        problem = BMCProblem(
            design=design,
            prop=prop,
            max_bound=8,
            violation_mode="first",
            bound_schedule=[2, 8],
        )
        result = BoundedModelChecker(problem).run()
        assert result.status is BMCStatus.VIOLATION
        # The window covers frames 2..7; the trace ends at whichever
        # violation the solver picked (minimality is only guaranteed for
        # dense schedules, where each window is a single frame).
        trace = result.counterexample
        assert 4 <= trace.length <= 8
        assert trace.state_at(trace.length - 1, "count") == 3

    def test_non_increasing_schedule_rejected(self):
        design = _counter_design()
        prop = SafetyProperty("p", BVVar("count", 4).ne(BVConst(4, 1)))
        with pytest.raises(ValueError):
            BMCProblem(design=design, prop=prop, bound_schedule=[4, 4])
        with pytest.raises(ValueError):
            BMCProblem(design=design, prop=prop, bound_schedule=[4, 2])

    def test_counterexample_waveform_rendering(self):
        design = _counter_design()
        prop = SafetyProperty("never2", BVVar("count", 4).ne(BVConst(4, 2)))
        result = check_property(design, prop, max_bound=6)
        summary = result.counterexample.summary(["count", "enable"])
        assert "count" in summary


class TestIncrementalEngine:
    """The engine must keep one solver and one CNF builder alive per run."""

    @pytest.fixture
    def construction_counters(self, monkeypatch):
        counters = {"solver": 0, "builder": 0}

        class CountingSolver(CDCLSolver):
            def __init__(self, *args, **kwargs):
                counters["solver"] += 1
                super().__init__(*args, **kwargs)

        class CountingBuilder(CNFBuilder):
            def __init__(self, *args, **kwargs):
                counters["builder"] += 1
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(engine_module, "CDCLSolver", CountingSolver)
        monkeypatch.setattr(engine_module, "CNFBuilder", CountingBuilder)
        return counters

    def test_first_mode_uses_one_solver_and_builder(self, construction_counters):
        design = _counter_design()
        prop = SafetyProperty("never9", BVVar("count", 4).ne(BVConst(4, 9)))
        problem = BMCProblem(
            design=design, prop=prop, max_bound=6, violation_mode="first"
        )
        result = BoundedModelChecker(problem).run()
        assert result.status is BMCStatus.NO_VIOLATION_WITHIN_BOUND
        assert construction_counters["solver"] == 1
        assert construction_counters["builder"] == 1

    def test_violating_run_uses_one_solver_and_builder(self, construction_counters):
        design = _counter_design()
        prop = SafetyProperty("never3", BVVar("count", 4).ne(BVConst(4, 3)))
        problem = BMCProblem(
            design=design, prop=prop, max_bound=8, violation_mode="first"
        )
        result = BoundedModelChecker(problem).run()
        assert result.status is BMCStatus.VIOLATION
        assert construction_counters["solver"] == 1
        assert construction_counters["builder"] == 1

    def test_per_bound_stats_reported(self):
        design = _counter_design()
        prop = SafetyProperty("never9", BVVar("count", 4).ne(BVConst(4, 9)))
        result = check_property(design, prop, max_bound=6)
        stats = result.per_bound_stats
        assert [s.bound for s in stats] == [1, 2, 3, 4, 5, 6]
        assert all(s.verdict == "unsat" for s in stats)
        # Dense schedule: each query checks exactly the one new frame.
        assert [s.window_start for s in stats] == [0, 1, 2, 3, 4, 5]
        # The learned-clause database is carried across bounds, never reset.
        carried = [s.learned_clauses_carried for s in stats]
        assert all(b >= a for a, b in zip(carried, carried[1:]))
        assert result.total_conflicts == sum(s.conflicts for s in stats)
        assert result.learned_clauses_carried == carried[-1]

    def test_violation_stats_end_with_sat_verdict(self):
        design = _counter_design()
        prop = SafetyProperty("never3", BVVar("count", 4).ne(BVConst(4, 3)))
        result = check_property(design, prop, max_bound=8)
        assert result.per_bound_stats[-1].verdict == "sat"
        assert all(s.verdict == "unsat" for s in result.per_bound_stats[:-1])
        assert result.per_bound_stats[-1].bound == result.bound_reached
