"""Tests for the bounded model checking engine."""

import pytest

from repro.bmc import BMCProblem, BMCStatus, BoundedModelChecker, SafetyProperty
from repro.bmc import engine as engine_module
from repro.bmc.engine import check_property
from repro.bmc.property import Assumption
from repro.bmc.unroller import SYMBOLIC, Unroller
from repro.expr import BVConst, BVVar, mux
from repro.expr.cnfgen import CNFBuilder
from repro.rtl import Circuit, elaborate
from repro.sat.solver import CDCLSolver


def _counter_design(width: int = 4):
    circuit = Circuit("counter")
    enable = circuit.input("enable", 1)
    count = circuit.register("count", width, reset=0)
    count.next = mux(enable, count.q + BVConst(width, 1), count.q)
    circuit.output("value", count.q)
    return elaborate(circuit)


class TestUnroller:
    def test_frames_accumulate(self):
        unroller = Unroller(_counter_design())
        unroller.unroll(3)
        assert unroller.num_frames == 3
        assert "enable" in unroller.frames[2].inputs

    def test_symbolic_initial_state_creates_inputs(self):
        design = _counter_design()
        unroller = Unroller(design, initial_state={"count": SYMBOLIC})
        unroller.unroll(1)
        assert unroller.aig.num_inputs >= design.inputs["enable"] + 4

    def test_blast_at_missing_frame_rejected(self):
        unroller = Unroller(_counter_design())
        with pytest.raises(IndexError):
            unroller.blast_at_frame(BVVar("count", 4), 0)


class TestEngine:
    def test_violation_found_at_expected_depth(self):
        design = _counter_design()
        prop = SafetyProperty("never3", BVVar("count", 4).ne(BVConst(4, 3)))
        result = check_property(design, prop, max_bound=8)
        assert result.status is BMCStatus.VIOLATION
        assert result.counterexample_length == 4
        assert result.counterexample.state_at(3, "count") == 3

    def test_unreachable_value_is_not_violated(self):
        design = _counter_design()
        prop = SafetyProperty("never9", BVVar("count", 4).ne(BVConst(4, 9)))
        result = check_property(design, prop, max_bound=5)
        assert result.status is BMCStatus.NO_VIOLATION_WITHIN_BOUND

    def test_assumptions_constrain_search(self):
        design = _counter_design()
        prop = SafetyProperty("never2", BVVar("count", 4).ne(BVConst(4, 2)))
        never_enable = Assumption("no_enable", BVVar("enable", 1).eq(BVConst(1, 0)))
        result = check_property(
            design, prop, assumptions=[never_enable], max_bound=6
        )
        assert result.status is BMCStatus.NO_VIOLATION_WITHIN_BOUND

    def test_any_frame_mode_matches_first_mode(self):
        design = _counter_design()
        prop = SafetyProperty("never3", BVVar("count", 4).ne(BVConst(4, 3)))
        problem = BMCProblem(
            design=design,
            prop=prop,
            max_bound=8,
            violation_mode="any",
            bound_schedule=[8],
        )
        result = BoundedModelChecker(problem).run()
        assert result.status is BMCStatus.VIOLATION
        # The trace is truncated at the first violating cycle of the chosen
        # run (the "any" mode does not minimise the prefix, so the length may
        # exceed the minimal 4-cycle counterexample but never the bound).
        trace = result.counterexample
        assert trace.length <= 8
        assert trace.state_at(trace.length - 1, "count") == 3

    def test_property_over_outputs(self):
        design = _counter_design()
        prop = SafetyProperty("output_small", BVVar("value", 4).ult(BVConst(4, 2)))
        result = check_property(design, prop, max_bound=6)
        assert result.found_violation
        assert result.counterexample_length == 3

    def test_invalid_violation_mode_rejected(self):
        design = _counter_design()
        prop = SafetyProperty("p", BVVar("count", 4).ne(BVConst(4, 1)))
        with pytest.raises(ValueError):
            BMCProblem(design=design, prop=prop, violation_mode="sometimes")

    def test_sparse_schedule_covers_skipped_frames(self):
        # Regression: with the per-bound "property holds before the last
        # frame" units, a sparse schedule of [2, 8] silently skipped the
        # violation at frame 3 (count == 3); the windowed incremental
        # encoding must find it.
        design = _counter_design()
        prop = SafetyProperty("never3", BVVar("count", 4).ne(BVConst(4, 3)))
        problem = BMCProblem(
            design=design,
            prop=prop,
            max_bound=8,
            violation_mode="first",
            bound_schedule=[2, 8],
        )
        result = BoundedModelChecker(problem).run()
        assert result.status is BMCStatus.VIOLATION
        # The window covers frames 2..7; the trace ends at whichever
        # violation the solver picked (minimality is only guaranteed for
        # dense schedules, where each window is a single frame).
        trace = result.counterexample
        assert 4 <= trace.length <= 8
        assert trace.state_at(trace.length - 1, "count") == 3

    def test_non_increasing_schedule_rejected(self):
        design = _counter_design()
        prop = SafetyProperty("p", BVVar("count", 4).ne(BVConst(4, 1)))
        with pytest.raises(ValueError):
            BMCProblem(design=design, prop=prop, bound_schedule=[4, 4])
        with pytest.raises(ValueError):
            BMCProblem(design=design, prop=prop, bound_schedule=[4, 2])

    def test_counterexample_waveform_rendering(self):
        design = _counter_design()
        prop = SafetyProperty("never2", BVVar("count", 4).ne(BVConst(4, 2)))
        result = check_property(design, prop, max_bound=6)
        summary = result.counterexample.summary(["count", "enable"])
        assert "count" in summary


class TestIncrementalEngine:
    """The engine must keep one solver and one CNF builder alive per run."""

    @pytest.fixture
    def construction_counters(self, monkeypatch):
        counters = {"solver": 0, "builder": 0}

        class CountingSolver(CDCLSolver):
            def __init__(self, *args, **kwargs):
                counters["solver"] += 1
                super().__init__(*args, **kwargs)

        class CountingBuilder(CNFBuilder):
            def __init__(self, *args, **kwargs):
                counters["builder"] += 1
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(engine_module, "CDCLSolver", CountingSolver)
        monkeypatch.setattr(engine_module, "CNFBuilder", CountingBuilder)
        return counters

    def test_first_mode_uses_one_solver_and_builder(self, construction_counters):
        design = _counter_design()
        prop = SafetyProperty("never9", BVVar("count", 4).ne(BVConst(4, 9)))
        problem = BMCProblem(
            design=design, prop=prop, max_bound=6, violation_mode="first"
        )
        result = BoundedModelChecker(problem).run()
        assert result.status is BMCStatus.NO_VIOLATION_WITHIN_BOUND
        assert construction_counters["solver"] == 1
        assert construction_counters["builder"] == 1

    def test_violating_run_uses_one_solver_and_builder(self, construction_counters):
        design = _counter_design()
        prop = SafetyProperty("never3", BVVar("count", 4).ne(BVConst(4, 3)))
        problem = BMCProblem(
            design=design, prop=prop, max_bound=8, violation_mode="first"
        )
        result = BoundedModelChecker(problem).run()
        assert result.status is BMCStatus.VIOLATION
        assert construction_counters["solver"] == 1
        assert construction_counters["builder"] == 1

    def test_per_bound_stats_reported(self):
        design = _counter_design()
        prop = SafetyProperty("never9", BVVar("count", 4).ne(BVConst(4, 9)))
        result = check_property(design, prop, max_bound=6)
        stats = result.per_bound_stats
        assert [s.bound for s in stats] == [1, 2, 3, 4, 5, 6]
        assert all(s.verdict == "unsat" for s in stats)
        # Dense schedule: each query checks exactly the one new frame.
        assert [s.window_start for s in stats] == [0, 1, 2, 3, 4, 5]
        # The learned-clause database is carried across bounds, never reset.
        carried = [s.learned_clauses_carried for s in stats]
        assert all(b >= a for a, b in zip(carried, carried[1:]))
        assert result.total_conflicts == sum(s.conflicts for s in stats)
        assert result.learned_clauses_carried == carried[-1]

    def test_violation_stats_end_with_sat_verdict(self):
        design = _counter_design()
        prop = SafetyProperty("never3", BVVar("count", 4).ne(BVConst(4, 3)))
        result = check_property(design, prop, max_bound=8)
        assert result.per_bound_stats[-1].verdict == "sat"
        assert all(s.verdict == "unsat" for s in result.per_bound_stats[:-1])
        assert result.per_bound_stats[-1].bound == result.bound_reached


class TestFormulaReductionPipeline:
    """COI extraction and CNF preprocessing under the incremental engine."""

    def _run(self, prop_value, schedule, preprocess, symbolic=False):
        design = _counter_design()
        prop = SafetyProperty(
            f"never{prop_value}", BVVar("count", 4).ne(BVConst(4, prop_value))
        )
        problem = BMCProblem(
            design=design,
            prop=prop,
            max_bound=schedule[-1],
            bound_schedule=schedule,
            preprocess=preprocess,
            initial_state={"count": SYMBOLIC} if symbolic else None,
        )
        return BoundedModelChecker(problem).run()

    def test_three_bound_unsat_run_matches_unpreprocessed(self):
        baseline = self._run(9, [2, 4, 6], preprocess=False)
        reduced = self._run(9, [2, 4, 6], preprocess=True)
        assert baseline.status is reduced.status is (
            BMCStatus.NO_VIOLATION_WITHIN_BOUND
        )
        assert [s.verdict for s in baseline.per_bound_stats] == [
            s.verdict for s in reduced.per_bound_stats
        ]
        assert reduced.frames_proven == baseline.frames_proven == 6

    def test_three_bound_violating_run_matches_unpreprocessed(self):
        baseline = self._run(5, [2, 4, 6], preprocess=False)
        reduced = self._run(5, [2, 4, 6], preprocess=True)
        assert baseline.status is reduced.status is BMCStatus.VIOLATION
        assert [s.verdict for s in baseline.per_bound_stats] == [
            s.verdict for s in reduced.per_bound_stats
        ]
        # The replayed counterexamples reach the same violation.
        assert (
            baseline.counterexample.state_at(5, "count")
            == reduced.counterexample.state_at(5, "count")
            == 5
        )

    def test_symbolic_initial_state_survives_preprocessing(self):
        """Model reconstruction must yield a replayable counterexample even
        when elimination removed variables between the frames."""
        baseline = self._run(3, [1, 2], preprocess=False, symbolic=True)
        reduced = self._run(3, [1, 2], preprocess=True, symbolic=True)
        assert baseline.status is reduced.status is BMCStatus.VIOLATION
        assert reduced.counterexample.state_at(0, "count") in range(16)

    def test_frozen_interface_variables_never_eliminated(self):
        design = _counter_design()
        prop = SafetyProperty("never9", BVVar("count", 4).ne(BVConst(4, 9)))
        problem = BMCProblem(
            design=design,
            prop=prop,
            max_bound=6,
            initial_state={"count": SYMBOLIC},
            preprocess=True,
        )
        checker = BoundedModelChecker(problem)
        checker.run()
        eliminated = {variable for variable, _ in checker._elim_stack}
        assert eliminated.isdisjoint(checker._builder.input_vars)

    def test_preprocessing_shrinks_the_slab(self):
        result = self._run(9, [6], preprocess=True)
        stats = [s for s in result.per_bound_stats if s.verdict != "skipped"]
        assert stats, "expected at least one solved bound"
        total_before = sum(s.slab_clauses_before for s in stats)
        total_after = sum(s.slab_clauses_after for s in stats)
        assert total_after < total_before
        assert result.variables_eliminated > 0

    def test_cone_of_influence_defers_unrelated_assumptions(self):
        """An environmental assumption over inputs the property cannot
        observe must be deferred, not encoded."""
        circuit = Circuit("two_counters")
        enable_a = circuit.input("enable_a", 1)
        enable_b = circuit.input("enable_b", 1)
        count_a = circuit.register("count_a", 4, reset=0)
        count_b = circuit.register("count_b", 4, reset=0)
        count_a.next = mux(enable_a, count_a.q + BVConst(4, 1), count_a.q)
        count_b.next = mux(enable_b, count_b.q + BVConst(4, 1), count_b.q)
        circuit.output("value_a", count_a.q)
        design = elaborate(circuit)
        prop = SafetyProperty("a_low", BVVar("count_a", 4).ne(BVConst(4, 9)))
        assumption = Assumption(
            "b_enabled", BVVar("enable_b", 1).eq(BVConst(1, 1))
        )
        problem = BMCProblem(
            design=design,
            prop=prop,
            assumptions=[assumption],
            max_bound=4,
        )
        result = BoundedModelChecker(problem).run()
        assert result.status is BMCStatus.NO_VIOLATION_WITHIN_BOUND
        deferred = sum(s.assumptions_deferred for s in result.per_bound_stats)
        assert deferred > 0
        asserted = sum(s.assumptions_asserted for s in result.per_bound_stats)
        # The deferred assumption never enters the formula.
        assert asserted == 0

    def test_coi_disabled_asserts_everything(self):
        design = _counter_design()
        prop = SafetyProperty("never9", BVVar("count", 4).ne(BVConst(4, 9)))
        problem = BMCProblem(
            design=design, prop=prop, max_bound=3, coi_assumptions=False
        )
        result = BoundedModelChecker(problem).run()
        assert sum(s.assumptions_deferred for s in result.per_bound_stats) == 0

    def test_conflict_budget_yields_unknown_and_no_proof(self):
        # Symbolic start state constrained below 8: ``count`` can never hit
        # 12 within the bound, but proving that takes real conflicts, which
        # a zero budget forbids -- every window must answer UNKNOWN.
        design = _counter_design()
        prop = SafetyProperty("never12", BVVar("count", 4).ne(BVConst(4, 12)))
        low_start = Assumption(
            "low", BVVar("count", 4).ult(BVConst(4, 8)), only_cycle=0
        )
        problem = BMCProblem(
            design=design,
            prop=prop,
            assumptions=[low_start],
            max_bound=4,
            initial_state={"count": SYMBOLIC},
            max_conflicts_per_query=0,
        )
        result = BoundedModelChecker(problem).run()
        assert result.status is BMCStatus.NO_VIOLATION_WITHIN_BOUND
        verdicts = {s.verdict for s in result.per_bound_stats}
        assert "unknown" in verdicts
        # Budget-expired windows are never promoted to proven frames.
        assert result.frames_proven < 4


class TestDeferredAssumptionSoundness:
    """SAT answers must be confirmed against deferred (off-cone) assumptions."""

    @staticmethod
    def _two_counter_design():
        circuit = Circuit("two_counters_sound")
        enable_a = circuit.input("enable_a", 1)
        enable_b = circuit.input("enable_b", 1)
        count_a = circuit.register("count_a", 4, reset=0)
        count_b = circuit.register("count_b", 4, reset=0)
        count_a.next = mux(enable_a, count_a.q + BVConst(4, 1), count_a.q)
        count_b.next = mux(enable_b, count_b.q + BVConst(4, 1), count_b.q)
        circuit.output("value_a", count_a.q)
        return elaborate(circuit)

    def test_jointly_unsat_deferred_assumptions_forbid_violation(self):
        # The property alone is violated at frame 3, but the environment
        # (contradictory constraints on an input outside the property cone)
        # admits no trace at all -- reporting a violation would be unsound.
        design = self._two_counter_design()
        prop = SafetyProperty("never3", BVVar("count_a", 4).ne(BVConst(4, 3)))
        contradictory = [
            Assumption("b_on", BVVar("enable_b", 1).eq(BVConst(1, 1))),
            Assumption("b_off", BVVar("enable_b", 1).eq(BVConst(1, 0))),
        ]
        for coi in (True, False):
            problem = BMCProblem(
                design=design,
                prop=prop,
                assumptions=contradictory,
                max_bound=6,
                coi_assumptions=coi,
            )
            result = BoundedModelChecker(problem).run()
            assert result.status is BMCStatus.NO_VIOLATION_WITHIN_BOUND, (
                f"spurious violation with coi_assumptions={coi}"
            )

    def test_reported_trace_honours_deferred_assumption(self):
        # A satisfiable off-cone assumption must still shape the returned
        # counterexample: enable_b is pinned high even though the property
        # never observes it.
        design = self._two_counter_design()
        prop = SafetyProperty("never2", BVVar("count_a", 4).ne(BVConst(4, 2)))
        pinned = Assumption("b_on", BVVar("enable_b", 1).eq(BVConst(1, 1)))
        problem = BMCProblem(
            design=design, prop=prop, assumptions=[pinned], max_bound=6
        )
        result = BoundedModelChecker(problem).run()
        assert result.status is BMCStatus.VIOLATION
        trace = result.counterexample
        assert all(
            trace.inputs[cycle]["enable_b"] == 1
            for cycle in range(trace.length)
        )


class TestFramesProvenMetric:
    def test_unknown_then_unsat_counts_the_later_proof(self):
        # [unsat@2, unknown@4, unsat@6]: the bound-6 window folds the
        # frames the UNKNOWN left unproven, so all six frames are proven.
        from repro.bmc.engine import BMCResult, BoundStats

        def stats(bound, verdict):
            return BoundStats(
                bound=bound, window_start=0, runtime_seconds=0.0,
                verdict=verdict,
            )

        result = BMCResult(
            status=BMCStatus.NO_VIOLATION_WITHIN_BOUND,
            property_name="p",
            bound_reached=6,
            runtime_seconds=0.0,
            per_bound_stats=[
                stats(2, "unsat"), stats(4, "unknown"), stats(6, "unsat")
            ],
        )
        assert result.frames_proven == 6

    def test_trailing_unknown_does_not_count(self):
        from repro.bmc.engine import BMCResult, BoundStats

        def stats(bound, verdict):
            return BoundStats(
                bound=bound, window_start=0, runtime_seconds=0.0,
                verdict=verdict,
            )

        result = BMCResult(
            status=BMCStatus.NO_VIOLATION_WITHIN_BOUND,
            property_name="p",
            bound_reached=4,
            runtime_seconds=0.0,
            per_bound_stats=[stats(2, "unsat"), stats(4, "unknown")],
        )
        assert result.frames_proven == 2
