"""Regression tests against the committed ``BENCH_bmc.json`` baseline.

The benchmark report is committed at the repo root so the perf trajectory
is tracked across PRs; these tests pin the *deterministic* half of it.
Verdicts, bounds reached, frames proven and counterexample lengths must
match the committed numbers exactly -- a solver or engine change that
moves any of them has changed observable behaviour (not just speed) and
must regenerate the baseline deliberately.  Wall-clock fields are never
compared here (that is ``scripts/bench_bmc.py --check``'s job, with a
noise-tolerant factor).

The sixteen-version sweep complements the sequential-vs-distributed
regression in ``tests/dist/test_regression.py``: it pins the *absolute*
EDDI-V verdict of every design version at the small tier-1 bound, so a
false detection introduced by a solver rewrite fails even if both engines
agree on it.
"""

import json
import os
import sys

import pytest

from repro.qed import QEDMode, SymbolicQED
from repro.uarch.versions import ALL_VERSIONS

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_bmc.json")

sys.path.insert(0, os.path.join(REPO_ROOT, "scripts"))
import bench_bmc  # noqa: E402  (the bench definitions are the fixture)

#: Fields of a bench run summary that are fully deterministic for a given
#: build (no wall clocks, no throughput ratios).
DETERMINISTIC_FIELDS = (
    "status",
    "bound_reached",
    "frames_proven",
    "counterexample_cycles",
)

#: Absolute EDDI-V verdicts (found_violation, frames_proven) of every
#: design version at the tier-1 bound -- all clean at bound 4; detections
#: need deeper bounds (see the slow-marked detection suite).
EXPECTED_BOUND4_EDDIV = {
    "A.v3": (False, 4),
    "A.v4": (False, 4),
    "A.v5": (False, 4),
    "A.v6": (False, 4),
    "A.v7": (False, 4),
    "A.v8": (False, 4),
    "B.v2": (False, 4),
    "B.v3": (False, 4),
    "B.v4": (False, 4),
    "B.v5": (False, 4),
    "B.v6": (False, 4),
    "C.v2": (False, 4),
    "C.v3": (False, 4),
    "C.v4": (False, 4),
    "C.v5": (False, 4),
    "C.v6": (False, 4),
}


def _baseline_runs():
    with open(BASELINE_PATH, "r", encoding="utf-8") as stream:
        report = json.load(stream)
    return {run["name"]: run for run in report["runs"]}


class TestCommittedBaseline:
    def test_counter_runs_match_baseline(self):
        baseline = _baseline_runs()
        for run in bench_bmc.run_counter_bench(16):
            old = baseline.get(run["name"])
            assert old is not None, (
                f"bench run {run['name']!r} missing from the committed "
                f"baseline -- regenerate BENCH_bmc.json"
            )
            for field in DETERMINISTIC_FIELDS:
                assert run[field] == old[field], (
                    f"{run['name']}: {field} changed "
                    f"{old[field]!r} -> {run[field]!r} vs the committed "
                    f"baseline"
                )

    def test_baseline_records_throughput_metrics(self):
        # The regenerated baseline must carry the gated throughput fields
        # for every solver-driven run, with a sane denominator on the
        # dense depth run (the one CI profiles).
        baseline = _baseline_runs()
        depth = baseline.get("depth/B.v6/eddiv_cf/budget3000")
        assert depth is not None
        assert depth["frames_proven"] >= 5
        assert "solve_seconds" in depth
        assert "propagations_per_second" in depth
        assert depth["solve_seconds"] > 0
        assert depth["propagations_per_second"] > 0


class TestDetectionBaseline:
    def test_eddiv_detection_replay_matches_baseline(self):
        # The Table-2 detection workload (interaction bug in A.v3): the
        # verdict, the bound it surfaces at and the *replayed*
        # counterexample length must match the committed baseline.
        baseline = _baseline_runs()["detection/A.v3/eddiv"]
        harness = SymbolicQED(
            "A.v3",
            mode=QEDMode.EDDIV,
            focus_opcodes=["LDI", "MOV", "INC", "ADD"],
            tracked_registers=(0,),
        )
        result = harness.check(max_bound=8)
        assert result.found_violation
        assert baseline["status"] == "violation"
        # Counterexample replay: the trace came back through the simulator
        # and was interpreted as a QED failure by the harness.
        assert result.counterexample is not None
        assert (
            result.counterexample.length_cycles
            == baseline["counterexample_cycles"]
        )
        assert result.bmc_result.bound_reached == baseline["bound_reached"]
        assert (
            result.bmc_result.frames_proven == baseline["frames_proven"]
        )


class TestSixteenVersionVerdicts:
    @pytest.mark.parametrize(
        "version", ALL_VERSIONS, ids=[v.name for v in ALL_VERSIONS]
    )
    def test_bound4_eddiv_verdict_unchanged(self, version):
        expected_violation, expected_frames = EXPECTED_BOUND4_EDDIV[
            version.name
        ]
        harness = SymbolicQED(
            version,
            mode=QEDMode.EDDIV,
            focus_opcodes=["LDI", "MOV", "INC", "ADD"],
        )
        result = harness.check(max_bound=4)
        assert result.found_violation == expected_violation
        assert result.bmc_result.frames_proven == expected_frames
        if expected_violation:
            assert result.counterexample is not None
