"""Regression tests against the committed ``BENCH_bmc.json`` baseline.

The benchmark report is committed at the repo root so the perf trajectory
is tracked across PRs; these tests pin the *deterministic* half of it.
Verdicts, bounds reached, frames proven and counterexample lengths must
match the committed numbers exactly -- a solver or engine change that
moves any of them has changed observable behaviour (not just speed) and
must regenerate the baseline deliberately.  Wall-clock fields are never
compared here (that is ``scripts/bench_bmc.py --check``'s job, with a
noise-tolerant factor).

The sixteen-version sweep complements the sequential-vs-distributed
regression in ``tests/dist/test_regression.py``: it pins the *absolute*
EDDI-V verdict of every design version at the small tier-1 bound, so a
false detection introduced by a solver rewrite fails even if both engines
agree on it.
"""

import json
import os
import sys

import pytest

from repro.qed import QEDMode, SymbolicQED
from repro.uarch.versions import ALL_VERSIONS

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_bmc.json")

sys.path.insert(0, os.path.join(REPO_ROOT, "scripts"))
import bench_bmc  # noqa: E402  (the bench definitions are the fixture)

#: Fields of a bench run summary that are fully deterministic for a given
#: build (no wall clocks, no throughput ratios).
DETERMINISTIC_FIELDS = (
    "status",
    "bound_reached",
    "frames_proven",
    "counterexample_cycles",
)

#: Absolute EDDI-V verdicts (found_violation, frames_proven) of every
#: design version at the tier-1 bound -- all clean at bound 4; detections
#: need deeper bounds (see the slow-marked detection suite).
EXPECTED_BOUND4_EDDIV = {
    "A.v3": (False, 4),
    "A.v4": (False, 4),
    "A.v5": (False, 4),
    "A.v6": (False, 4),
    "A.v7": (False, 4),
    "A.v8": (False, 4),
    "B.v2": (False, 4),
    "B.v3": (False, 4),
    "B.v4": (False, 4),
    "B.v5": (False, 4),
    "B.v6": (False, 4),
    "C.v2": (False, 4),
    "C.v3": (False, 4),
    "C.v4": (False, 4),
    "C.v5": (False, 4),
    "C.v6": (False, 4),
}


def _baseline_runs():
    with open(BASELINE_PATH, "r", encoding="utf-8") as stream:
        report = json.load(stream)
    return {run["name"]: run for run in report["runs"]}


class TestCommittedBaseline:
    def test_counter_runs_match_baseline(self):
        baseline = _baseline_runs()
        for run in bench_bmc.run_counter_bench(16):
            old = baseline.get(run["name"])
            assert old is not None, (
                f"bench run {run['name']!r} missing from the committed "
                f"baseline -- regenerate BENCH_bmc.json"
            )
            for field in DETERMINISTIC_FIELDS:
                assert run[field] == old[field], (
                    f"{run['name']}: {field} changed "
                    f"{old[field]!r} -> {run[field]!r} vs the committed "
                    f"baseline"
                )

    def test_baseline_records_throughput_metrics(self):
        # The regenerated baseline must carry the gated throughput fields
        # for every solver-driven run, with a sane denominator on the
        # dense depth run (the one CI profiles).
        baseline = _baseline_runs()
        depth = baseline.get("depth/B.v6/eddiv_cf/budget3000")
        assert depth is not None
        assert depth["frames_proven"] >= 5
        assert "solve_seconds" in depth
        assert "propagations_per_second" in depth
        assert depth["solve_seconds"] > 0
        assert depth["propagations_per_second"] > 0


class TestDetectionBaseline:
    def test_eddiv_detection_replay_matches_baseline(self):
        # The Table-2 detection workload (interaction bug in A.v3): the
        # verdict, the bound it surfaces at and the *replayed*
        # counterexample length must match the committed baseline.
        baseline = _baseline_runs()["detection/A.v3/eddiv"]
        harness = SymbolicQED(
            "A.v3",
            mode=QEDMode.EDDIV,
            focus_opcodes=["LDI", "MOV", "INC", "ADD"],
            tracked_registers=(0,),
        )
        result = harness.check(max_bound=8)
        assert result.found_violation
        assert baseline["status"] == "violation"
        # Counterexample replay: the trace came back through the simulator
        # and was interpreted as a QED failure by the harness.
        assert result.counterexample is not None
        assert (
            result.counterexample.length_cycles
            == baseline["counterexample_cycles"]
        )
        assert result.bmc_result.bound_reached == baseline["bound_reached"]
        assert (
            result.bmc_result.frames_proven == baseline["frames_proven"]
        )


class TestSixteenVersionVerdicts:
    @pytest.mark.parametrize(
        "version", ALL_VERSIONS, ids=[v.name for v in ALL_VERSIONS]
    )
    def test_bound4_eddiv_verdict_unchanged(self, version):
        expected_violation, expected_frames = EXPECTED_BOUND4_EDDIV[
            version.name
        ]
        harness = SymbolicQED(
            version,
            mode=QEDMode.EDDIV,
            focus_opcodes=["LDI", "MOV", "INC", "ADD"],
        )
        result = harness.check(max_bound=4)
        assert result.found_violation == expected_violation
        assert result.bmc_result.frames_proven == expected_frames
        if expected_violation:
            assert result.counterexample is not None


def _history_run(pps, solve_seconds=2.0):
    return {
        "status": "ok",
        "runtime_seconds": 3.0,
        "solve_seconds": solve_seconds,
        "propagations_per_second": pps,
        "frames_proven": 5,
    }


def _history_entry(pps, **kwargs):
    return {"runs": {"depth/trend": _history_run(pps, **kwargs)}}


def _trend_report(pps, solve_seconds=2.0):
    return {
        "runs": [
            {
                "name": "depth/trend",
                "propagations_per_second": pps,
                "solve_seconds": solve_seconds,
            }
        ]
    }


class TestTrendDetection:
    """``--check``'s history-based monotonic pps decline gate."""

    def test_monotonic_decline_over_window_fails(self):
        history = [
            _history_entry(1000.0),
            _history_entry(940.0),
            _history_entry(880.0),
        ]
        failures = bench_bmc.check_trend(_trend_report(820.0), history)
        assert len(failures) == 1
        assert "depth/trend" in failures[0]
        assert "declined" in failures[0]

    def test_steps_within_tolerance_pass(self):
        # Each step declines, but by less than TREND_STEP_TOLERANCE --
        # strict monotonicity alone would flag wall-clock noise.
        history = [
            _history_entry(1000.0),
            _history_entry(990.0),
            _history_entry(980.0),
        ]
        assert bench_bmc.check_trend(_trend_report(970.0), history) == []

    def test_non_monotonic_history_passes(self):
        history = [
            _history_entry(1000.0),
            _history_entry(1100.0),  # recovery breaks the streak
            _history_entry(900.0),
        ]
        assert bench_bmc.check_trend(_trend_report(850.0), history) == []

    def test_short_history_never_fails(self):
        history = [_history_entry(1000.0), _history_entry(900.0)]
        assert bench_bmc.check_trend(_trend_report(800.0), history) == []

    def test_ineligible_entries_break_the_streak(self):
        history = [
            _history_entry(1000.0),
            _history_entry(940.0, solve_seconds=0.01),  # noise-dominated
            _history_entry(880.0),
        ]
        assert bench_bmc.check_trend(_trend_report(820.0), history) == []

    def test_fast_current_run_is_exempt(self):
        history = [
            _history_entry(1000.0),
            _history_entry(940.0),
            _history_entry(880.0),
        ]
        report = _trend_report(820.0, solve_seconds=0.01)
        assert bench_bmc.check_trend(report, history) == []


class TestHistoryFile:
    def test_entry_round_trips_through_jsonl(self, tmp_path):
        report = {
            "profile": "fast",
            "commit": "abcdef123456",
            "obs_enabled": True,
            "runs": [dict(_history_run(1234.5), name="depth/trend")],
        }
        path = str(tmp_path / "history.jsonl")
        bench_bmc.append_history(path, bench_bmc.history_entry(report))
        entries = bench_bmc.load_history(path)
        assert len(entries) == 1
        entry = entries[0]
        assert entry["commit"] == "abcdef123456"
        assert entry["obs_enabled"] is True
        assert entry["profile"] == "fast"
        run = entry["runs"]["depth/trend"]
        assert run["propagations_per_second"] == 1234.5
        assert run["frames_proven"] == 5
        assert entry["t"] > 0

    def test_load_history_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text('{"runs": {}}\nnot json\n\n[1, 2]\n{"runs": {}}\n')
        assert len(bench_bmc.load_history(str(path))) == 2

    def test_load_history_missing_file_is_empty(self, tmp_path):
        assert bench_bmc.load_history(str(tmp_path / "absent.jsonl")) == []

    def test_git_commit_is_attributable(self):
        commit = bench_bmc._git_commit()
        # In a checkout this is the 12-char short hash; outside one the
        # sentinel keeps reports self-describing either way.
        assert commit == "unknown" or len(commit) >= 7
