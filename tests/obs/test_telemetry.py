"""Unit and solver-integration tests for ``repro.obs.telemetry``."""

import random

import pytest

from repro.obs import telemetry as obs_telemetry
from repro.obs.telemetry import TelemetrySink
from repro.sat.cnf import CNF
from repro.sat.solver import CDCLSolver, SolverStatus


def make_sink(**kwargs):
    kwargs.setdefault("min_interval_seconds", 0.0)
    return TelemetrySink(**kwargs)


class TestSinkRing:
    def test_record_stamps_seq_pid_time_and_site(self):
        sink = make_sink()
        heartbeat = sink.record("restart", conflicts=7)
        assert heartbeat["seq"] == 0
        assert heartbeat["site"] == "restart"
        assert heartbeat["conflicts"] == 7
        assert isinstance(heartbeat["pid"], int)
        assert heartbeat["t"] > 0
        assert sink.record("db_reduce")["seq"] == 1

    def test_ring_bound_drops_oldest_and_counts(self):
        sink = make_sink(max_heartbeats=3)
        for index in range(5):
            sink.record("restart", conflicts=index)
        assert len(sink.heartbeats) == 3
        assert sink.dropped == 2
        assert [hb["conflicts"] for hb in sink.snapshot()] == [2, 3, 4]

    def test_max_heartbeats_must_be_positive(self):
        with pytest.raises(ValueError):
            TelemetrySink(max_heartbeats=0)

    def test_due_throttles_by_min_interval(self):
        sink = TelemetrySink(min_interval_seconds=3600.0)
        assert sink.due()  # nothing sampled yet
        sink.record("restart")
        assert not sink.due()
        fast = make_sink()
        fast.record("restart")
        assert fast.due()

    def test_context_merges_and_none_drops(self):
        sink = make_sink()
        sink.set_context(bound=3, worker=1)
        heartbeat = sink.record("restart")
        assert heartbeat["bound"] == 3 and heartbeat["worker"] == 1
        sink.set_context(bound=None)
        assert "bound" not in sink.record("restart")
        # explicit fields win over ambient context
        sink.set_context(bound=5)
        assert sink.record("bound", bound=9)["bound"] == 9


class TestPpsWindow:
    def test_pps_derived_from_window(self):
        sink = make_sink()
        first = sink.record("restart", propagations=0)
        assert "pps" not in first  # single point, no span yet
        second = sink.record("restart", propagations=1000)
        assert second["pps"] > 0

    def test_window_resets_on_decreasing_propagations(self):
        sink = make_sink()
        sink.record("restart", propagations=5000)
        sink.record("restart", propagations=9000)
        # A fresh solver instance starts counting from scratch; the
        # window must not produce a negative or bogus rate.
        fresh = sink.record("restart", propagations=10)
        assert "pps" not in fresh
        assert sink.record("restart", propagations=500)["pps"] > 0


class TestForkShipping:
    def test_mark_and_batch_since(self):
        sink = make_sink()
        sink.record("restart", conflicts=1)
        mark = sink.mark()
        assert sink.batch_since(mark) == []
        sink.record("restart", conflicts=2)
        sink.record("db_reduce", conflicts=3)
        batch = sink.batch_since(mark)
        assert [hb["conflicts"] for hb in batch] == [2, 3]

    def test_batch_since_survives_ring_eviction(self):
        sink = make_sink(max_heartbeats=2)
        mark = sink.mark()
        for index in range(5):
            sink.record("restart", conflicts=index)
        # Only the retained tail can ship; older ones were evicted.
        assert [hb["conflicts"] for hb in sink.batch_since(mark)] == [3, 4]

    def test_absorb_merges_worker_batch(self):
        parent = make_sink()
        parent.record("restart", conflicts=1)
        worker = make_sink()
        worker.set_context(worker=3)
        worker.record("restart", conflicts=10)
        parent.absorb(worker.batch_since(0))
        assert [hb["conflicts"] for hb in parent.snapshot()] == [1, 10]
        assert parent.snapshot()[-1]["worker"] == 3


class TestFlush:
    def test_flush_ships_pending_once(self):
        batches = []
        sink = make_sink(on_flush=batches.append, flush_interval_seconds=0.0)
        sink.record("restart", conflicts=1)
        sink.record("restart", conflicts=2)
        sink.flush()
        shipped = [hb["conflicts"] for batch in batches for hb in batch]
        assert shipped == [1, 2]
        # nothing new -> flush ships nothing more
        sink.flush()
        assert sum(len(b) for b in batches) == 2

    def test_flush_interval_throttles_callback(self):
        batches = []
        sink = make_sink(
            on_flush=batches.append, flush_interval_seconds=3600.0
        )
        sink.record("restart", conflicts=1)  # first flush fires (t=0 base)
        sink.record("restart", conflicts=2)  # throttled
        total_auto = sum(len(b) for b in batches)
        assert total_auto < 2
        sink.flush()  # force ships the rest
        assert sum(len(b) for b in batches) == 2

    def test_callback_errors_are_swallowed_and_counted(self):
        def boom(batch):
            raise RuntimeError("flush failed")

        sink = make_sink(on_flush=boom, flush_interval_seconds=0.0)
        sink.record("restart")
        sink.flush()
        assert sink.flush_errors >= 1

    def test_detach_flush_stops_shipping(self):
        batches = []
        sink = make_sink(on_flush=batches.append, flush_interval_seconds=0.0)
        sink.detach_flush()
        sink.record("restart")
        sink.flush()
        assert batches == []


class TestModuleGlobals:
    def test_install_active_clear(self):
        assert obs_telemetry.active() is None
        sink = obs_telemetry.install()
        assert obs_telemetry.active() is sink
        obs_telemetry.clear()
        assert obs_telemetry.active() is None

    def test_set_enabled_masks_installed_sink(self):
        sink = obs_telemetry.install()
        obs_telemetry.set_enabled(False)
        assert not obs_telemetry.enabled()
        assert obs_telemetry.active() is None
        obs_telemetry.set_enabled(True)
        assert obs_telemetry.active() is sink


# ----------------------------------------------------------------------
def _hard_random_cnf(num_vars=120, num_clauses=516, seed=3):
    rng = random.Random(seed)
    cnf = CNF(num_vars)
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), 3)
        clauses.append(
            tuple(v if rng.random() < 0.5 else -v for v in variables)
        )
    cnf.add_clauses(clauses)
    return cnf


class TestSolverIntegration:
    def test_heartbeats_sampled_on_cold_branches(self):
        sink = obs_telemetry.install(
            TelemetrySink(min_interval_seconds=0.0)
        )
        solver = CDCLSolver(_hard_random_cnf())
        solver.solve()
        restarts = [
            hb for hb in sink.snapshot() if hb["site"] == "restart"
        ]
        assert len(restarts) >= 2
        conflicts = [hb["conflicts"] for hb in restarts]
        assert conflicts == sorted(conflicts)
        assert all(c > 0 for c in conflicts)
        latest = restarts[-1]
        for field in (
            "decisions",
            "propagations",
            "learned",
            "trail_depth",
            "decision_level",
            "learned_live",
            "arena_len",
            "restart_interval",
        ):
            assert field in latest
        # restart-site heartbeats carry the learned-DB LBD histogram
        assert isinstance(latest["lbd_hist"], dict)
        assert sum(latest["lbd_hist"].values()) <= latest["learned_live"]

    def test_results_identical_with_telemetry_on_and_off(self):
        solver_off = CDCLSolver(_hard_random_cnf())
        result_off = solver_off.solve()
        stats_off = (
            solver_off.stats.conflicts,
            solver_off.stats.decisions,
            solver_off.stats.propagations,
        )
        obs_telemetry.install(TelemetrySink(min_interval_seconds=0.0))
        solver_on = CDCLSolver(_hard_random_cnf())
        result_on = solver_on.solve()
        stats_on = (
            solver_on.stats.conflicts,
            solver_on.stats.decisions,
            solver_on.stats.propagations,
        )
        assert result_on.status is result_off.status
        assert result_on.model == result_off.model
        assert stats_on == stats_off

    def test_disabled_telemetry_samples_nothing(self):
        sink = obs_telemetry.install(
            TelemetrySink(min_interval_seconds=0.0)
        )
        obs_telemetry.set_enabled(False)
        solver = CDCLSolver(_hard_random_cnf())
        solver.solve()
        assert sink.snapshot() == []

    def test_solver_solves_without_any_sink(self):
        solver = CDCLSolver(_hard_random_cnf())
        assert solver.solve().status in (
            SolverStatus.SAT,
            SolverStatus.UNSAT,
        )
