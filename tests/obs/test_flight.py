"""Unit tests for the failure flight recorder."""

import json
import os

import pytest

from repro.obs.flight import FLIGHT_FORMAT, FlightRecorder


class TestFlightRecorder:
    def test_dump_writes_structured_artifact(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path))
        assert recorder.enabled
        path = recorder.dump(
            "job-000007",
            reason="quarantined",
            state="failed",
            trace={"trace_id": "t1", "spans": []},
            error="BrokenProcessPool: boom",
            attempts=3,
            extra={"bug_id": "wrport_collision"},
        )
        assert path == str(tmp_path / "flight-job-000007.json")
        with open(path, "r", encoding="utf-8") as stream:
            payload = json.load(stream)
        assert payload["format"] == FLIGHT_FORMAT
        assert payload["reason"] == "quarantined"
        assert payload["attempts"] == 3
        assert payload["bug_id"] == "wrport_collision"
        assert payload["trace"]["trace_id"] == "t1"
        assert recorder.dumps == 1
        assert not os.path.exists(path + ".tmp")

    def test_repeat_dump_overwrites(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path))
        recorder.dump("job-1", reason="failed", state="failed", attempts=1)
        path = recorder.dump("job-1", reason="failed", state="failed", attempts=2)
        with open(path, "r", encoding="utf-8") as stream:
            assert json.load(stream)["attempts"] == 2
        assert recorder.dumps == 2

    def test_disabled_recorder_is_a_noop(self):
        recorder = FlightRecorder(None)
        assert not recorder.enabled
        assert recorder.dump("job-1", reason="failed", state="failed") is None
        assert recorder.dumps == 0

    def test_unwritable_directory_counts_not_raises(self, tmp_path):
        target = tmp_path / "denied"
        target.mkdir()
        target.chmod(0o500)
        recorder = FlightRecorder(str(target))
        try:
            path = recorder.dump("job-1", reason="failed", state="failed")
        finally:
            target.chmod(0o700)
        if os.getuid() == 0:
            # root ignores mode bits; the write goes through.
            assert path is not None
        else:
            assert path is None
            assert recorder.write_errors == 1


class TestEviction:
    def _dump(self, recorder, job_id, mtime=None):
        path = recorder.dump(job_id, reason="failed", state="failed")
        if mtime is not None:
            os.utime(path, (mtime, mtime))
        return path

    def test_directory_bounded_by_max_files(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path), max_files=3)
        for index in range(6):
            # Explicit, strictly increasing mtimes: filesystem timestamp
            # granularity must not decide which records look oldest.
            self._dump(recorder, f"job-{index:06d}", mtime=1000.0 + index)
        names = sorted(os.listdir(tmp_path))
        assert len(names) == 3
        assert names == [
            "flight-job-000003.json",
            "flight-job-000004.json",
            "flight-job-000005.json",
        ]
        assert recorder.evictions == 3
        assert recorder.dumps == 6

    def test_oldest_by_mtime_evicted_first(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path), max_files=2)
        self._dump(recorder, "job-new", mtime=5000.0)
        self._dump(recorder, "job-old", mtime=1000.0)
        # Third dump must evict job-old (oldest mtime), not job-new.
        self._dump(recorder, "job-late", mtime=9000.0)
        names = sorted(os.listdir(tmp_path))
        assert names == ["flight-job-late.json", "flight-job-new.json"]
        assert recorder.evictions == 1

    def test_just_written_record_never_evicted(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path), max_files=1)
        self._dump(recorder, "job-a", mtime=9999999999.0)
        # Even though job-b's mtime is older than job-a's, the record
        # just written survives; the other one goes.
        path = self._dump(recorder, "job-b", mtime=1.0)
        assert os.listdir(tmp_path) == ["flight-job-b.json"]
        assert path.endswith("flight-job-b.json")

    def test_foreign_files_are_ignored(self, tmp_path):
        (tmp_path / "notes.txt").write_text("keep me")
        (tmp_path / "flight-old.log").write_text("not a record")
        recorder = FlightRecorder(str(tmp_path), max_files=1)
        self._dump(recorder, "job-a", mtime=10.0)
        self._dump(recorder, "job-b", mtime=20.0)
        names = sorted(os.listdir(tmp_path))
        assert "notes.txt" in names and "flight-old.log" in names
        assert "flight-job-b.json" in names
        assert "flight-job-a.json" not in names

    def test_max_files_validated(self, tmp_path):
        with pytest.raises(ValueError):
            FlightRecorder(str(tmp_path), max_files=0)
