"""Unit tests for the failure flight recorder."""

import json
import os

from repro.obs.flight import FLIGHT_FORMAT, FlightRecorder


class TestFlightRecorder:
    def test_dump_writes_structured_artifact(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path))
        assert recorder.enabled
        path = recorder.dump(
            "job-000007",
            reason="quarantined",
            state="failed",
            trace={"trace_id": "t1", "spans": []},
            error="BrokenProcessPool: boom",
            attempts=3,
            extra={"bug_id": "wrport_collision"},
        )
        assert path == str(tmp_path / "flight-job-000007.json")
        with open(path, "r", encoding="utf-8") as stream:
            payload = json.load(stream)
        assert payload["format"] == FLIGHT_FORMAT
        assert payload["reason"] == "quarantined"
        assert payload["attempts"] == 3
        assert payload["bug_id"] == "wrport_collision"
        assert payload["trace"]["trace_id"] == "t1"
        assert recorder.dumps == 1
        assert not os.path.exists(path + ".tmp")

    def test_repeat_dump_overwrites(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path))
        recorder.dump("job-1", reason="failed", state="failed", attempts=1)
        path = recorder.dump("job-1", reason="failed", state="failed", attempts=2)
        with open(path, "r", encoding="utf-8") as stream:
            assert json.load(stream)["attempts"] == 2
        assert recorder.dumps == 2

    def test_disabled_recorder_is_a_noop(self):
        recorder = FlightRecorder(None)
        assert not recorder.enabled
        assert recorder.dump("job-1", reason="failed", state="failed") is None
        assert recorder.dumps == 0

    def test_unwritable_directory_counts_not_raises(self, tmp_path):
        target = tmp_path / "denied"
        target.mkdir()
        target.chmod(0o500)
        recorder = FlightRecorder(str(target))
        try:
            path = recorder.dump("job-1", reason="failed", state="failed")
        finally:
            target.chmod(0o700)
        if os.getuid() == 0:
            # root ignores mode bits; the write goes through.
            assert path is not None
        else:
            assert path is None
            assert recorder.write_errors == 1
