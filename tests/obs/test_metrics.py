"""Unit tests for the metrics registry and its wire formats."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    diff_snapshots,
    parse_prometheus,
    process_metrics,
    reset_process_metrics,
)


class TestRecording:
    def test_counters_accumulate_per_label_set(self):
        registry = MetricsRegistry()
        registry.inc("requests_total")
        registry.inc("requests_total", 2.0)
        registry.inc("requests_total", status="500")
        assert registry.counter_value("requests_total") == 3.0
        assert registry.counter_value("requests_total", status="500") == 1.0
        assert registry.counter_value("absent_total") == 0.0

    def test_gauges_take_last_value(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 5.0)
        registry.set_gauge("depth", 2.0)
        assert "depth 2" in registry.render_prometheus()

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        registry.observe("wait_seconds", 0.03)
        registry.observe("wait_seconds", 7.0)
        text = registry.render_prometheus()
        parsed = parse_prometheus(text)
        # 0.03 lands at le=0.05 and every wider bucket; 7.0 first at le=10.
        assert parsed['wait_seconds_bucket{le="0.025"}'] == 0
        assert parsed['wait_seconds_bucket{le="0.05"}'] == 1
        assert parsed['wait_seconds_bucket{le="10"}'] == 2
        assert parsed['wait_seconds_bucket{le="+Inf"}'] == 2
        assert parsed["wait_seconds_count"] == 2
        assert parsed["wait_seconds_sum"] == pytest.approx(7.03)

    def test_observation_above_every_bound_only_counts_inf(self):
        registry = MetricsRegistry()
        registry.observe("wait_seconds", DEFAULT_BUCKETS[-1] + 1.0)
        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed[f'wait_seconds_bucket{{le="{int(DEFAULT_BUCKETS[-1])}"}}'] == 0
        assert parsed['wait_seconds_bucket{le="+Inf"}'] == 1


class TestSnapshotsAndMerge:
    def test_merge_adds_counters_and_histograms(self):
        child = MetricsRegistry()
        child.inc("conflicts_total", 10.0)
        child.observe("stage_seconds", 0.2, stage="solve")
        parent = MetricsRegistry()
        parent.inc("conflicts_total", 5.0)
        parent.merge(child.snapshot())
        parent.merge(child.snapshot())
        assert parent.counter_value("conflicts_total") == 25.0
        parsed = parse_prometheus(parent.render_prometheus())
        assert parsed['stage_seconds_count{stage="solve"}'] == 2

    def test_merge_overwrites_gauges(self):
        child = MetricsRegistry()
        child.set_gauge("depth", 9.0)
        parent = MetricsRegistry()
        parent.set_gauge("depth", 1.0)
        parent.merge(child.snapshot())
        assert "depth 9" in parent.render_prometheus()

    def test_diff_snapshots_ships_only_the_delta(self):
        registry = MetricsRegistry()
        registry.inc("jobs_total", 4.0)
        registry.observe("wait_seconds", 0.1)
        mark = registry.snapshot()
        registry.inc("jobs_total", 2.0)
        registry.observe("wait_seconds", 0.2)
        delta = diff_snapshots(registry.snapshot(), mark)
        receiver = MetricsRegistry()
        receiver.merge(delta)
        assert receiver.counter_value("jobs_total") == 2.0
        parsed = parse_prometheus(receiver.render_prometheus())
        assert parsed["wait_seconds_count"] == 1
        assert parsed["wait_seconds_sum"] == pytest.approx(0.2)

    def test_diff_of_identical_snapshots_is_empty(self):
        registry = MetricsRegistry()
        registry.inc("jobs_total")
        snap = registry.snapshot()
        delta = diff_snapshots(registry.snapshot(), snap)
        assert delta["counters"] == {}
        assert delta["histograms"] == {}


class TestRenderingAndParsing:
    def test_render_is_deterministic(self):
        registry = MetricsRegistry()
        registry.inc("b_total", 1.0, z="1", a="2")
        registry.inc("a_total")
        assert registry.render_prometheus() == registry.render_prometheus()
        lines = registry.render_prometheus().splitlines()
        assert lines[0] == "# TYPE a_total counter"
        assert 'b_total{a="2",z="1"} 1' in lines

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus("justonetoken")

    def test_parse_skips_comments_and_blanks(self):
        parsed = parse_prometheus("# HELP x\n\nx_total 3\n")
        assert parsed == {"x_total": 3.0}


class TestProcessRegistry:
    def test_process_registry_is_ambient_and_resettable(self):
        process_metrics().inc("ambient_total")
        assert process_metrics().counter_value("ambient_total") == 1.0
        fresh = reset_process_metrics()
        assert fresh is process_metrics()
        assert process_metrics().counter_value("ambient_total") == 0.0


class TestParseRenderRoundTrip:
    """``parse_prometheus(render_prometheus())`` recovers every sample."""

    def test_histogram_round_trip_including_inf_bucket(self):
        registry = MetricsRegistry()
        observations = (0.003, 0.04, 2.5, 99.0, 12345.0)
        for value in observations:
            registry.observe("solve_seconds", value)
        parsed = parse_prometheus(registry.render_prometheus())
        # +Inf bucket == _count == number of observations; the cumulative
        # bucket counts are non-decreasing up to it.
        assert parsed['solve_seconds_bucket{le="+Inf"}'] == len(observations)
        assert parsed["solve_seconds_count"] == len(observations)
        assert parsed["solve_seconds_sum"] == pytest.approx(
            sum(observations)
        )
        counts = [
            parsed[f'solve_seconds_bucket{{le="{bound:g}"}}']
            for bound in DEFAULT_BUCKETS
            if f'solve_seconds_bucket{{le="{bound:g}"}}' in parsed
        ]
        assert counts  # %g must match the rendered bucket bounds
        assert counts == sorted(counts)
        assert all(
            count <= len(observations) for count in counts
        )

    def test_every_bucket_line_parses_back(self):
        registry = MetricsRegistry()
        registry.observe("wait_seconds", 0.5, kind="queue")
        parsed = parse_prometheus(registry.render_prometheus())
        bucket_keys = [
            key for key in parsed if key.startswith("wait_seconds_bucket")
        ]
        # one line per DEFAULT_BUCKETS bound plus the +Inf bucket
        assert len(bucket_keys) == len(DEFAULT_BUCKETS) + 1
        assert all('kind="queue"' in key for key in bucket_keys)

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        tricky = 'he said "hi" \\ back'
        registry.inc("events_total", 2.0, msg=tricky)
        text = registry.render_prometheus()
        # escaped on the wire...
        assert '\\"hi\\"' in text and "\\\\" in text
        parsed = parse_prometheus(text)
        key = 'events_total{msg="he said \\"hi\\" \\\\ back"}'
        assert parsed[key] == 2.0

    def test_zero_count_series_render_and_parse(self):
        registry = MetricsRegistry()
        registry.inc("errors_total", 0.0)
        registry.set_gauge("depth", 0.0, queue="main")
        parsed = parse_prometheus(registry.render_prometheus())
        # a zero-valued series is a real sample, not an omitted one
        assert parsed["errors_total"] == 0.0
        assert parsed['depth{queue="main"}'] == 0.0

    def test_round_trip_is_stable_under_reparse(self):
        registry = MetricsRegistry()
        registry.inc("a_total", 3.0, k="v")
        registry.observe("h_seconds", 1.5)
        registry.set_gauge("g", 7.25)
        text = registry.render_prometheus()
        first = parse_prometheus(text)
        second = parse_prometheus(text)
        assert first == second
        assert first["g"] == 7.25
