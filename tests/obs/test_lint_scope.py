"""Static-lint regression coverage for the instrumented code paths.

The observability layer records from inside forked workers, so the whole
``repro.obs`` package sits in the fork-safety lint scope; and the solver
instrumentation must never touch a ``# hot-loop`` region -- both enforced
here so a future edit cannot silently regress them.
"""

import glob
import os

from repro.analysis.code_lint import lint_file, lint_fork_safety

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _src(*parts):
    return os.path.join(REPO_ROOT, "src", "repro", *parts)


class TestHotLoopStaysClean:
    def test_instrumented_solver_passes_hot_loop_lint(self):
        # The CDCL solver carries observer events on its cold branches
        # (restart, DB reduce, deadline polls); its ``# hot-loop`` regions
        # (_propagate, _lit_redundant) must stay allocation- and call-free.
        report = lint_file(_src("sat", "solver.py"))
        assert report.ok, [f.message for f in report.errors]

    def test_instrumented_engine_and_scheduler_pass(self):
        for path in (_src("bmc", "engine.py"), _src("dist", "scheduler.py")):
            report = lint_file(path)
            assert report.ok, (path, [f.message for f in report.errors])


class TestObsInForkScope:
    def test_obs_package_passes_fork_safety_lint(self):
        paths = sorted(glob.glob(_src("obs", "*.py")))
        assert paths, "obs package not found"
        report = lint_fork_safety(paths)
        assert report.ok, [f.message for f in report.errors]

    def test_lint_script_includes_obs_in_fork_globs(self):
        script = os.path.join(REPO_ROOT, "scripts", "lint_repro.py")
        with open(script, "r", encoding="utf-8") as stream:
            text = stream.read()
        assert "src/repro/obs/*.py" in text
