"""Unit tests for the tracing core: collectors, spans, stores."""

import os

import pytest

from repro.obs import trace as obs_trace
from repro.obs.trace import (
    ObsCollector,
    TraceStore,
    new_trace_id,
    sum_self_seconds,
)


class TestObsCollector:
    def test_nesting_parents_under_innermost_open_span(self):
        collector = ObsCollector()
        outer = collector.begin("outer")
        inner = collector.begin("inner")
        assert inner["parent_id"] == outer["span_id"]
        collector.end(inner)
        sibling = collector.begin("sibling")
        assert sibling["parent_id"] == outer["span_id"]
        collector.end(sibling)
        collector.end(outer)
        assert outer["parent_id"] is None
        assert all(s["end"] is not None for s in collector.spans)

    def test_span_ids_embed_pid(self):
        collector = ObsCollector()
        record = collector.begin("x")
        assert record["span_id"].startswith(f"{os.getpid():x}.")

    def test_end_is_safe_against_double_close(self):
        collector = ObsCollector()
        outer = collector.begin("outer")
        inner = collector.begin("inner")
        collector.end(inner)
        collector.end(inner)  # double close must not pop the outer span
        assert collector._stack == [outer["span_id"]]
        collector.end(outer)
        assert collector._stack == []

    def test_events_ring_drops_oldest(self):
        collector = ObsCollector(max_events=3)
        for i in range(5):
            collector.event("tick", {"i": i})
        assert len(collector.events) == 3
        assert collector.dropped_events == 2
        assert [e["attrs"]["i"] for e in collector.events] == [2, 3, 4]

    def test_span_cap_stops_recording(self):
        collector = ObsCollector(max_spans=2)
        for _ in range(4):
            collector.end(collector.begin("s"))
        assert len(collector.spans) == 2

    def test_batch_since_withholds_open_spans(self):
        collector = ObsCollector()
        mark = collector.mark()
        open_span = collector.begin("open")
        closed = collector.begin("closed")
        collector.end(closed)
        batch = collector.batch_since(mark)
        names = [s["name"] for s in batch["spans"]]
        assert names == ["closed"]
        assert batch["trace_id"] == collector.trace_id
        collector.end(open_span)

    def test_absorb_appends_child_batches(self):
        parent = ObsCollector()
        root = parent.begin("root")
        child = ObsCollector(parent.trace_id)
        child._stack.append(root["span_id"])  # simulate fork inheritance
        leaf = child.begin("leaf")
        child.end(leaf)
        child.event("child.event")
        parent.absorb(child.batch_since((0, 0)))
        parent.end(root)
        by_name = {s["name"]: s for s in parent.spans}
        assert by_name["leaf"]["parent_id"] == root["span_id"]
        assert any(e["name"] == "child.event" for e in parent.events)


class TestModuleGlobals:
    def test_install_active_clear_last(self):
        assert obs_trace.active() is None
        collector = obs_trace.start_trace()
        assert obs_trace.active() is collector
        assert obs_trace.clear() is collector
        assert obs_trace.active() is None
        assert obs_trace.last_trace() is collector

    def test_set_enabled_gates_start_trace(self):
        assert obs_trace.enabled()
        previous = obs_trace.set_enabled(False)
        assert previous is True
        assert not obs_trace.enabled()
        assert obs_trace.start_trace() is None
        obs_trace.set_enabled(True)
        assert obs_trace.start_trace() is not None

    def test_span_helper_is_noop_when_off(self):
        handle = obs_trace.span("nothing")
        handle.set(x=1)
        handle.close()  # must not raise

    def test_span_handle_close_is_idempotent(self):
        obs_trace.start_trace()
        with obs_trace.span("outer"):
            handle = obs_trace.span("inner")
            handle.close(verdict="ok")
            handle.close(verdict="changed")  # second close is a no-op
        collector = obs_trace.clear()
        inner = next(s for s in collector.spans if s["name"] == "inner")
        assert inner["attrs"]["verdict"] == "ok"

    def test_trace_ids_are_unique(self):
        assert new_trace_id() != new_trace_id()


class TestTraceStore:
    def test_rerooting_attaches_unknown_parents(self):
        store = TraceStore()
        store.ensure("job-1", "t1")
        attempt = store.add_span("job-1", "queue.attempt", 0.0, None, attempt=1)
        worker = ObsCollector("t1")
        root = worker.begin("detect_bug")
        leaf = worker.begin("bmc.bound")
        worker.end(leaf)
        worker.end(root)
        store.absorb("job-1", worker.batch_since((0, 0)), attach_to=attempt)
        view = store.to_json_dict("job-1")
        by_name = {s["name"]: s for s in view["spans"]}
        # The worker's root re-roots under the attempt; its subtree does not.
        assert by_name["detect_bug"]["parent_id"] == attempt
        assert by_name["bmc.bound"]["parent_id"] == root["span_id"]

    def test_close_span_settles_open_attempts(self):
        store = TraceStore()
        store.ensure("job-1", "t1")
        span_id = store.add_span("job-1", "queue.attempt", 1.0, None)
        store.close_span("job-1", span_id, 2.5, outcome="done")
        (span,) = store.to_json_dict("job-1")["spans"]
        assert span["end"] == 2.5
        assert span["attrs"]["outcome"] == "done"

    def test_unknown_job_is_a_noop(self):
        store = TraceStore()
        assert store.add_span("nope", "x", 0.0, 1.0) is None
        store.add_event("nope", "x")
        store.absorb("nope", {"spans": []})
        assert store.to_json_dict("nope") is None

    def test_job_cap_evicts_oldest(self):
        store = TraceStore(max_jobs=2)
        for i in range(3):
            store.ensure(f"job-{i}", f"t{i}")
        assert not store.known("job-0")
        assert store.known("job-1") and store.known("job-2")

    def test_event_ring_is_bounded(self):
        store = TraceStore(max_events=2)
        store.ensure("job-1", "t1")
        for i in range(4):
            store.add_event("job-1", "tick", i=i)
        view = store.to_json_dict("job-1")
        assert len(view["events"]) == 2
        assert view["dropped_events"] == 2


class TestSelfSeconds:
    def test_self_time_subtracts_direct_children(self):
        spans = [
            {"span_id": "a", "parent_id": None, "name": "root",
             "start": 0.0, "end": 10.0, "attrs": {}},
            {"span_id": "b", "parent_id": "a", "name": "child",
             "start": 1.0, "end": 7.0, "attrs": {}},
            {"span_id": "c", "parent_id": "a", "name": "child",
             "start": 7.0, "end": 9.0, "attrs": {}},
            {"span_id": "d", "parent_id": None, "name": "open",
             "start": 0.0, "end": None, "attrs": {}},
        ]
        table = sum_self_seconds(spans)
        assert table["root"] == [1.0, 10.0, pytest.approx(2.0)]
        assert table["child"] == [2.0, pytest.approx(8.0), pytest.approx(8.0)]
        assert "open" not in table
