"""Trace-context propagation across the fork boundary.

A collector installed before a fan-out is inherited by every forked
worker (copy-on-write memory snapshot); workers record spans under the
parent's trace id and ship them back over the channel they already report
results on.  These tests assert the stitched-together trace: one trace
id, spans recorded by more than one pid, worker subtrees parented under
the span that was open at fork time.
"""

import json
import os

import pytest

from repro.dist.cubes import binary_cubes
from repro.dist.portfolio import solve_portfolio
from repro.dist.scheduler import SplitConfig, SplitQuery, WorkScheduler
from repro.eval.campaign import (
    CampaignConfig,
    detect_bug,
    record_comparable_dict,
    run_campaign,
)
from repro.obs import trace as obs_trace

# x1|x2 and x3|x4 but every cross pair forbidden: UNSAT (4 cubes of work).
UNSAT_CLAUSES = [[1, 2], [3, 4], [-1, -3], [-1, -4], [-2, -3], [-2, -4]]


def _pid_prefixes(spans):
    return {str(s["span_id"]).split(".")[0] for s in spans}


class TestSchedulerPropagation:
    def test_cube_workers_report_spans_under_parent_trace(self):
        collector = obs_trace.start_trace()
        query = SplitQuery(
            clauses=[list(c) for c in UNSAT_CLAUSES],
            num_vars=4,
            cubes=binary_cubes([1, 2], 2),
        )
        WorkScheduler(SplitConfig(workers=2)).solve(query)
        obs_trace.clear()
        by_name = {}
        for span in collector.spans:
            by_name.setdefault(span["name"], []).append(span)
        assert len(by_name["dist.solve"]) == 1
        cubes = by_name["dist.cube"]
        assert len(cubes) == 4
        # Spans were recorded by forked workers, not the parent...
        assert f"{os.getpid():x}" not in _pid_prefixes(cubes)
        # ...yet every one parents under the parent's open dist.solve span.
        solve_id = by_name["dist.solve"][0]["span_id"]
        assert all(c["parent_id"] == solve_id for c in cubes)

    def test_sequential_scheduler_records_in_parent(self):
        collector = obs_trace.start_trace()
        query = SplitQuery(
            clauses=[list(c) for c in UNSAT_CLAUSES],
            num_vars=4,
            cubes=binary_cubes([1, 2], 2),
        )
        WorkScheduler(SplitConfig(workers=1)).solve(query)
        obs_trace.clear()
        cubes = [s for s in collector.spans if s["name"] == "dist.cube"]
        assert len(cubes) == 4
        assert _pid_prefixes(cubes) == {f"{os.getpid():x}"}


class TestPortfolioPropagation:
    def test_racers_ship_spans_back(self):
        collector = obs_trace.start_trace()
        outcome = solve_portfolio(UNSAT_CLAUSES, 4, workers=2)
        obs_trace.clear()
        racers = [s for s in collector.spans if s["name"] == "portfolio.racer"]
        # Every *finished* racer shipped its span (a cancelled loser may not).
        assert len(racers) >= len(outcome.finished) >= 1
        assert f"{os.getpid():x}" not in _pid_prefixes(racers)


class TestCampaignPropagation:
    def test_campaign_workers_report_under_one_trace(self):
        config = CampaignConfig(bug_ids=["sra_zero_fill", "wrport_collision"])
        run_campaign(config, workers=2)
        collector = obs_trace.last_trace()
        assert collector is not None
        by_name = {}
        for span in collector.spans:
            by_name.setdefault(span["name"], []).append(span)
        assert len(by_name["run_campaign"]) == 1
        detects = by_name["detect_bug"]
        assert len(detects) == 2
        # Both jobs ran in forked pool workers; their spans came home.
        prefixes = _pid_prefixes(detects)
        assert f"{os.getpid():x}" not in prefixes
        campaign_id = by_name["run_campaign"][0]["span_id"]
        assert all(d["parent_id"] == campaign_id for d in detects)
        # BMC subtree spans survived the trip too.
        assert "bmc.bound" in by_name


class TestByteIdenticalRecords:
    def test_detection_record_identical_with_obs_on_and_off(self):
        obs_trace.start_trace()
        record_on = detect_bug("sra_zero_fill")
        obs_trace.clear()

        obs_trace.set_enabled(False)
        try:
            record_off = detect_bug("sra_zero_fill")
        finally:
            obs_trace.set_enabled(True)

        on = json.dumps(record_comparable_dict(record_on), sort_keys=True)
        off = json.dumps(record_comparable_dict(record_off), sort_keys=True)
        assert on == off
