"""Observability fixtures: no collector or counters leak between tests."""

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import telemetry as obs_telemetry
from repro.obs import trace as obs_trace


@pytest.fixture(autouse=True)
def _clean_obs():
    obs_trace.set_enabled(True)
    obs_telemetry.set_enabled(True)
    yield
    obs_trace.clear()
    obs_trace.set_enabled(True)
    obs_telemetry.clear()
    obs_telemetry.set_enabled(True)
    obs_metrics.reset_process_metrics()
