"""Tests for the Symbolic QED stack: EDDI-V, the QED modules, Single-I."""

import pytest

from repro.isa import TINY_PROFILE, decode, encode
from repro.qed import QEDMode, SingleIChecker, SymbolicQED, allowed_instructions
from repro.qed.eddiv import EDDIVMapping
from repro.uarch.versions import version_by_name


class TestEDDIVMapping:
    def setup_method(self):
        self.mapping = EDDIVMapping(TINY_PROFILE)

    def test_register_pairs(self):
        pairs = self.mapping.register_pairs()
        assert pairs[0] == (0, 4)
        assert len(pairs) == TINY_PROFILE.half_regs
        assert self.mapping.duplicate_register(1) == 5
        assert self.mapping.original_register(5) == 1

    def test_out_of_half_rejected(self):
        with pytest.raises(ValueError):
            self.mapping.duplicate_register(5)
        with pytest.raises(ValueError):
            self.mapping.original_register(1)

    def test_duplicate_word_moves_registers(self):
        word = encode(TINY_PROFILE, "ADD", rd=1, rs1=2, rs2=3)
        duplicate = decode(TINY_PROFILE, self.mapping.duplicate_word(word))
        assert (duplicate.rd, duplicate.rs1, duplicate.rs2) == (5, 6, 7)
        assert duplicate.mnemonic == "ADD"

    def test_duplicate_word_moves_absolute_addresses(self):
        word = encode(TINY_PROFILE, "STA", rs2=1, imm=1)
        duplicate = decode(TINY_PROFILE, self.mapping.duplicate_word(word))
        assert duplicate.imm == 1 + TINY_PROFILE.half_dmem
        assert duplicate.rs2 == 5

    def test_is_original_word(self):
        assert self.mapping.is_original_word(
            encode(TINY_PROFILE, "ADD", rd=1, rs1=2, rs2=3)
        )
        assert not self.mapping.is_original_word(
            encode(TINY_PROFILE, "ADD", rd=5, rs1=2, rs2=3)
        )


class TestAllowedInstructionSets:
    def test_base_mode_excludes_control_flow_and_fixed_rd(self):
        names = {i.name for i in allowed_instructions(TINY_PROFILE, QEDMode.EDDIV, with_extension=True)}
        assert "ADD" in names and "LDA" in names
        assert "BZ" not in names
        assert "LDIL" not in names
        assert "HALT" not in names
        assert "LD" not in names  # register-indirect memory excluded

    def test_cf_mode_adds_control_flow(self):
        names = {i.name for i in allowed_instructions(TINY_PROFILE, QEDMode.EDDIV_CF, with_extension=True)}
        assert {"BZ", "BNZ", "BEQ", "JR", "JMP"} <= names
        assert "JAL" not in names

    def test_mem_mode_allows_fixed_rd_but_no_memory(self):
        names = {i.name for i in allowed_instructions(TINY_PROFILE, QEDMode.EDDIV_MEM, with_extension=True)}
        assert "LDIL" in names
        assert "LDA" not in names and "ST" not in names


class TestHarnessComposition:
    @pytest.mark.parametrize(
        "mode", [QEDMode.EDDIV, QEDMode.EDDIV_CF, QEDMode.EDDIV_MEM]
    )
    def test_composed_design_elaborates(self, mode):
        harness = SymbolicQED("B.v6", mode=mode, arch=TINY_PROFILE)
        design = harness.design
        assert "qed_instruction_to_core" in design.outputs
        assert any(name.startswith("qed") for name in design.state_names)
        assert "qed_wiring_instruction" in design.assumptions

    def test_focus_opcode_validation(self):
        with pytest.raises(ValueError):
            SymbolicQED(
                "B.v6",
                mode=QEDMode.EDDIV,
                arch=TINY_PROFILE,
                focus_opcodes=["BZ"],  # control flow is not allowed in EDDIV
            )


@pytest.mark.slow
class TestDetection:
    """End-to-end detection/soundness on representative versions.

    These run the real BMC flow; focus opcode sets keep each run in the
    seconds-to-minutes range (see the campaign module for the rationale).
    Marked ``slow``: deselected by the default tier-1 profile, run with
    ``pytest -m slow tests/qed``.
    """

    def test_baseline_eddiv_detects_interaction_bug(self):
        harness = SymbolicQED(
            "A.v3",
            mode=QEDMode.EDDIV,
            arch=TINY_PROFILE,
            focus_opcodes=["LDI", "MOV", "INC", "ADD"],
        )
        result = harness.check(max_bound=8)
        assert result.found_violation
        assert 4 <= result.counterexample_cycles <= 8
        assert result.counterexample_instructions >= 2
        assert result.counterexample.mismatching_register_pairs()

    def test_clean_design_has_no_false_failures(self):
        harness = SymbolicQED(
            "B.v6",
            mode=QEDMode.EDDIV,
            arch=TINY_PROFILE,
            focus_opcodes=["LDI", "MOV", "INC", "ADD", "STA", "LDA"],
        )
        result = harness.check(max_bound=6)
        assert not result.found_violation

    def test_qed_cf_detects_wrong_branch_direction(self):
        # The hardest SAT instance in the suite: the bound-8 QED-CF query
        # needs well over 10^5 conflicts and has never completed within a
        # 10-minute budget on the pure-Python backend (seed included).
        # Dropping ADD from the focus set makes it tractable but loses the
        # detection (the bug needs a flag write between CMPI and BZ).
        harness = SymbolicQED(
            "A.v4",
            mode=QEDMode.EDDIV_CF,
            arch=TINY_PROFILE,
            focus_opcodes=["LDI", "ADD", "CMPI", "BZ"],
        )
        result = harness.check(max_bound=8)
        assert result.found_violation

    def test_qed_mem_detects_fixed_destination_bug(self):
        harness = SymbolicQED(
            "A.v5",
            mode=QEDMode.EDDIV_MEM,
            arch=TINY_PROFILE,
            tracked_registers=(0,),
        )
        result = harness.check(max_bound=9)
        assert result.found_violation
        report = result.counterexample_report()
        assert "LDIL" in report


class TestSingleI:
    def test_clean_design_satisfies_representative_properties(self):
        checker = SingleIChecker("B.v6", arch=TINY_PROFILE)
        results = checker.check_all(
            instructions=["ADD", "SUB", "SRA", "ROR", "CMPI", "SATADD", "BZ", "LDA"]
        )
        assert not [r.instruction for r in results if r.violated]

    def test_sra_bug_detected(self):
        checker = SingleIChecker("A.v6", arch=TINY_PROFILE)
        result = checker.check_instruction("SRA")
        assert result.violated
        assert result.counterexample_instructions == 1

    def test_spec_bug_detected_on_final_design_a(self):
        checker = SingleIChecker("A.v8", arch=TINY_PROFILE)
        assert checker.check_instruction("CMPI").violated
        # ...while CMP itself is fine.
        assert not checker.check_instruction("CMP").violated

    def test_interaction_bugs_escape_single_i(self):
        # A.v3 carries only interaction bugs; single-instruction properties
        # cannot see them (this is why the paper needs EDDI-V).
        checker = SingleIChecker("A.v3", arch=TINY_PROFILE)
        results = checker.check_all(instructions=["ADD", "MOV", "INC", "XOR"])
        assert not [r.instruction for r in results if r.violated]
