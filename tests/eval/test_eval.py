"""Tests for the effort model, campaign plumbing and report formatting."""

import pytest

from repro.eval import (
    EffortModel,
    FOCUS_SETS,
    PersonTime,
    detection_breakdown,
    design_inventory,
    format_table,
    runtime_statistics,
    setup_effort_table,
)
from repro.eval.campaign import BugDetectionRecord, CampaignResult
from repro.uarch.bugs import BUGS


class TestEffortModel:
    def test_unit_conversions(self):
        assert PersonTime.months(1).days == 21
        assert PersonTime.weeks(2).days == 10
        assert PersonTime.hours(8).days == 1

    def test_headline_factors_match_paper(self):
        factors = EffortModel().headline_factors()
        # Paper: >8X for the initial design, ~60X for subsequent designs.
        assert 8.0 <= factors["initial"] <= 10.0
        assert 40.0 <= factors["subsequent"] <= 65.0

    def test_table1_rows(self):
        rows = setup_effort_table()
        techniques = [row["technique"] for row in rows]
        assert "Symbolic QED" in techniques
        assert any("Improvement" in t for t in techniques)

    def test_fig7_breakdown_sums_to_eight_weeks(self):
        breakdown = EffortModel().qed_setup_breakdown()
        total = sum(item.person_weeks for _, item in breakdown)
        assert total == pytest.approx(8.0)

    def test_describe_uses_natural_units(self):
        assert "person-months" in PersonTime.months(3).describe()
        assert "person-weeks" in PersonTime.weeks(2).describe()
        assert "person-days" in PersonTime(2).describe()


class TestReports:
    def test_design_inventory_has_sixteen_rows(self):
        rows = design_inventory()
        assert len(rows) == 16
        table = format_table(rows, ["version", "rom_interface", "bugs_present"])
        assert "A.v3" in table

    def test_focus_sets_cover_every_bug(self):
        assert set(FOCUS_SETS) == {bug.bug_id for bug in BUGS}

    def test_runtime_statistics(self):
        stats = runtime_statistics([2.0, 4.0, 6.0])
        assert stats == {"min": 2.0, "avg": 4.0, "max": 6.0}
        assert runtime_statistics([]) is None

    def test_detection_breakdown_percentages(self):
        # Synthetic campaign with the paper's detection pattern.
        records = []
        for bug in BUGS:
            record = BugDetectionRecord(bug_id=bug.bug_id, version_name="X")
            record.detected_by[bug.primary_feature] = True
            record.crs_detected = bug.detected_by_crs
            records.append(record)
        breakdown = detection_breakdown(CampaignResult(records=records))
        assert breakdown["total_bugs"] == 14
        assert breakdown["symbolic_qed_detected"] == 14
        assert breakdown["industrial_flow_detected"] == 13
        assert breakdown["qed_unique_bugs"] == ["cmpi_carry_spec"]
        assert breakdown["qed_vs_industrial_percent"] == pytest.approx(107.7, abs=0.1)
        percent = breakdown["feature_breakdown_percent"]
        assert percent["eddiv"] == pytest.approx(35.7, abs=0.1)
        assert percent["qed_cf"] == pytest.approx(28.6, abs=0.1)
        assert percent["qed_mem"] == pytest.approx(7.1, abs=0.1)
        assert percent["single_i"] == pytest.approx(28.6, abs=0.1)
