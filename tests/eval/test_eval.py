"""Tests for the effort model, campaign plumbing and report formatting."""

import pytest

from repro.eval import (
    EffortModel,
    FOCUS_SETS,
    PersonTime,
    detection_breakdown,
    design_inventory,
    format_table,
    runtime_statistics,
    setup_effort_table,
)
from repro.eval.campaign import BugDetectionRecord, CampaignResult
from repro.eval import CampaignConfig, detect_bug, run_campaign
from repro.uarch.bugs import BUGS


class TestEffortModel:
    def test_unit_conversions(self):
        assert PersonTime.months(1).days == 21
        assert PersonTime.weeks(2).days == 10
        assert PersonTime.hours(8).days == 1

    def test_headline_factors_match_paper(self):
        factors = EffortModel().headline_factors()
        # Paper: >8X for the initial design, ~60X for subsequent designs.
        assert 8.0 <= factors["initial"] <= 10.0
        assert 40.0 <= factors["subsequent"] <= 65.0

    def test_table1_rows(self):
        rows = setup_effort_table()
        techniques = [row["technique"] for row in rows]
        assert "Symbolic QED" in techniques
        assert any("Improvement" in t for t in techniques)

    def test_fig7_breakdown_sums_to_eight_weeks(self):
        breakdown = EffortModel().qed_setup_breakdown()
        total = sum(item.person_weeks for _, item in breakdown)
        assert total == pytest.approx(8.0)

    def test_describe_uses_natural_units(self):
        assert "person-months" in PersonTime.months(3).describe()
        assert "person-weeks" in PersonTime.weeks(2).describe()
        assert "person-days" in PersonTime(2).describe()


class TestReports:
    def test_design_inventory_has_sixteen_rows(self):
        rows = design_inventory()
        assert len(rows) == 16
        table = format_table(rows, ["version", "rom_interface", "bugs_present"])
        assert "A.v3" in table

    def test_focus_sets_cover_every_bug(self):
        assert set(FOCUS_SETS) == {bug.bug_id for bug in BUGS}

    def test_runtime_statistics(self):
        stats = runtime_statistics([2.0, 4.0, 6.0])
        assert stats == {"min": 2.0, "avg": 4.0, "max": 6.0}
        assert runtime_statistics([]) is None

    def test_detection_breakdown_percentages(self):
        # Synthetic campaign with the paper's detection pattern.
        records = []
        for bug in BUGS:
            record = BugDetectionRecord(bug_id=bug.bug_id, version_name="X")
            record.detected_by[bug.primary_feature] = True
            record.crs_detected = bug.detected_by_crs
            records.append(record)
        breakdown = detection_breakdown(CampaignResult(records=records))
        assert breakdown["total_bugs"] == 14
        assert breakdown["symbolic_qed_detected"] == 14
        assert breakdown["industrial_flow_detected"] == 13
        assert breakdown["qed_unique_bugs"] == ["cmpi_carry_spec"]
        assert breakdown["qed_vs_industrial_percent"] == pytest.approx(107.7, abs=0.1)
        percent = breakdown["feature_breakdown_percent"]
        assert percent["eddiv"] == pytest.approx(35.7, abs=0.1)
        assert percent["qed_cf"] == pytest.approx(28.6, abs=0.1)
        assert percent["qed_mem"] == pytest.approx(7.1, abs=0.1)
        assert percent["single_i"] == pytest.approx(28.6, abs=0.1)


class TestParallelCampaign:
    """The process-pool fan-out must not change what the campaign records."""

    BUG_IDS = ["sra_zero_fill", "cmpi_carry_spec"]

    @staticmethod
    def _comparable(record):
        """Every field except the wall-clock measurements."""
        return {
            "bug_id": record.bug_id,
            "version_name": record.version_name,
            "detected_by": dict(record.detected_by),
            "qed_counterexample_cycles": record.qed_counterexample_cycles,
            "qed_solver_conflicts": record.qed_solver_conflicts,
            "qed_learned_clauses": record.qed_learned_clauses,
            "qed_variables_eliminated": record.qed_variables_eliminated,
            "qed_clauses_subsumed": record.qed_clauses_subsumed,
            "crs_detected": record.crs_detected,
            "ocsfv_detected": record.ocsfv_detected,
            "dst_detected": record.dst_detected,
        }

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            run_campaign(CampaignConfig(bug_ids=self.BUG_IDS), workers=0)

    def test_parallel_records_match_serial(self):
        # Industrial-flow baselines are covered elsewhere; skipping them
        # keeps this tier-1 test in the sub-second-per-job range.
        config = CampaignConfig(
            bug_ids=self.BUG_IDS,
            run_industrial_flow=False,
            run_directed_tests=False,
        )
        serial = run_campaign(config, workers=1)
        parallel = run_campaign(config, workers=2)
        assert [self._comparable(r) for r in serial.records] == [
            self._comparable(r) for r in parallel.records
        ]
        # Deterministic merge: records come back in bug-selection order.
        assert [r.bug_id for r in parallel.records] == self.BUG_IDS

    def test_detect_bug_matches_campaign_record(self):
        config = CampaignConfig(
            bug_ids=self.BUG_IDS[:1],
            run_industrial_flow=False,
            run_directed_tests=False,
        )
        campaign = run_campaign(config)
        single = detect_bug(self.BUG_IDS[0], config)
        assert self._comparable(campaign.records[0]) == self._comparable(single)
