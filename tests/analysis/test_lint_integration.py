"""Design lint is wired fail-fast into every solve entry point.

A design with a forged combinational cycle would *hang* structural
hashing, unrolling and bit-blasting (all walk the expression graph
expecting a DAG), so each entry point must reject it with a structured
:class:`DesignLintError` report before any of that machinery runs:

* :class:`repro.bmc.engine.BoundedModelChecker` -- at construction,
* :func:`repro.eval.campaign.detect_bug` -- before the harness is built,
* ``POST /jobs`` on the server -- a 400 response carrying the report,
  instead of a queued job.
"""

import http.client
import json

import pytest

from repro.analysis.findings import DesignLintError
from repro.analysis.netlist_lint import (
    CHECK_COMB_CYCLE,
    clear_version_lint_memo,
)
from repro.bmc.engine import BMCProblem, BoundedModelChecker
from repro.bmc.property import SafetyProperty
from repro.expr import BVConst, BVVar
from repro.rtl.design import Design, StateElement


def _cyclic_design() -> Design:
    """A counter whose next-state expression contains a forged cycle."""
    var = BVVar("count", 4)
    node = var + BVConst(4, 1)
    object.__setattr__(node, "children", (node, node.children[1]))
    return Design(
        name="cyclic",
        inputs={},
        state=[StateElement("count", 4, 0)],
        next_state={"count": node},
        outputs={},
        assumptions={},
    )


@pytest.fixture()
def cyclic_build_design(monkeypatch):
    """Make every version build the cyclic design; reset the lint memo."""
    from repro.uarch import designs as designs_module

    def build_cyclic(version, *args, **kwargs):
        return _cyclic_design()

    monkeypatch.setattr(designs_module, "build_design", build_cyclic)
    clear_version_lint_memo()
    yield
    clear_version_lint_memo()


class TestEngineRejection:
    def test_checker_construction_raises(self):
        problem = BMCProblem(
            design=_cyclic_design(),
            prop=SafetyProperty("p", BVVar("count", 4).ne(BVConst(4, 3))),
            max_bound=4,
        )
        with pytest.raises(DesignLintError) as excinfo:
            BoundedModelChecker(problem)
        assert excinfo.value.report.by_check(CHECK_COMB_CYCLE)


class TestCampaignRejection:
    def test_detect_bug_raises_before_harness(self, cyclic_build_design):
        from repro.eval.campaign import detect_bug

        with pytest.raises(DesignLintError) as excinfo:
            detect_bug("wrport_collision")
        assert excinfo.value.report.by_check(CHECK_COMB_CYCLE)


class TestServeRejection:
    def test_submit_returns_400_with_report(
        self, cyclic_build_design, tmp_path
    ):
        from repro.serve.queue import _selftest_entry
        from repro.serve.server import LocalServer

        with LocalServer(
            cache_dir=str(tmp_path),
            entry=_selftest_entry,
            use_processes=False,
        ) as url:
            host, port = url.removeprefix("http://").split(":")
            connection = http.client.HTTPConnection(host, int(port), timeout=30)
            try:
                connection.request(
                    "POST",
                    "/jobs",
                    body=json.dumps({"bug_id": "wrport_collision"}),
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                payload = json.loads(response.read())
            finally:
                connection.close()
        assert response.status == 400
        assert "lint" in payload, payload
        assert payload["lint"]["ok"] is False
        assert any(
            finding["check"] == CHECK_COMB_CYCLE
            for finding in payload["lint"]["findings"]
        )


class TestMemoization:
    def test_version_lint_memoized_per_arch(self):
        from repro.analysis.netlist_lint import lint_version_design
        from repro.uarch.versions import ALL_VERSIONS

        clear_version_lint_memo()
        version = ALL_VERSIONS[0]
        first = lint_version_design(version)
        assert lint_version_design(version) is first
        clear_version_lint_memo()
        assert lint_version_design(version) is not first
