"""Layer-1 netlist lint: a tripping and a clean fixture per check."""

import pytest

from repro.analysis.findings import DesignLintError, ERROR, WARNING
from repro.analysis.netlist_lint import (
    CHECK_BAD_WIDTH,
    CHECK_BUGLIB_NO_DIFF,
    CHECK_BUGLIB_UNDECLARED,
    CHECK_COMB_CYCLE,
    CHECK_DANGLING_DRIVER,
    CHECK_DEAD_INPUT,
    CHECK_DEAD_STATE,
    CHECK_MULTIPLY_DRIVEN,
    CHECK_NO_NEXT_STATE,
    CHECK_QED_INJECTION,
    CHECK_QED_ISOLATION,
    CHECK_RESET_RANGE,
    CHECK_UNDRIVEN,
    CHECK_WIDTH_MISMATCH,
    check_design,
    expression_digest,
    lint_bug_library,
    lint_design,
)
from repro.expr import BVConst, BVVar, mux
from repro.rtl.design import Design, StateElement


def _design(**overrides) -> Design:
    """A minimal clean design: a 4-bit counter with an enable input."""
    enable = BVVar("enable", 1)
    count = BVVar("count", 4)
    fields = dict(
        name="fixture",
        inputs={"enable": 1},
        state=[StateElement("count", 4, 0)],
        next_state={"count": mux(enable, count + BVConst(4, 1), count)},
        outputs={"value": count},
        assumptions={},
    )
    fields.update(overrides)
    return Design(**fields)


def forge_cycle(width: int = 4):
    """An expression graph with a genuine cycle (normally unforgeable)."""
    var = BVVar("count", width)
    node = var + BVConst(width, 1)
    # BV.__setattr__ raises, so a cycle can only be forged this way --
    # which is exactly how a deserialization bug would do it.
    object.__setattr__(node, "children", (node, node.children[1]))
    return node


class TestCleanDesign:
    def test_counter_is_clean(self):
        report = lint_design(_design())
        assert report.ok
        assert report.findings == []

    def test_check_design_passes(self):
        check_design(_design())  # must not raise


class TestCombCycle:
    def test_forged_cycle_detected(self):
        report = lint_design(_design(next_state={"count": forge_cycle()}))
        assert not report.ok
        assert report.by_check(CHECK_COMB_CYCLE)

    def test_cycle_short_circuits_support_checks(self):
        # The report must come back (no hang) and carry only the cycle
        # finding -- support-based checks are skipped on a non-DAG.
        report = lint_design(_design(next_state={"count": forge_cycle()}))
        assert {f.check for f in report.findings} == {CHECK_COMB_CYCLE}

    def test_check_design_raises_with_report(self):
        with pytest.raises(DesignLintError) as excinfo:
            check_design(_design(next_state={"count": forge_cycle()}))
        assert excinfo.value.report.by_check(CHECK_COMB_CYCLE)
        assert "comb-cycle" in str(excinfo.value)

    def test_diamond_sharing_is_not_a_cycle(self):
        # Shared sub-DAGs (the common case after CSE) must not be
        # mistaken for cycles.
        shared = BVVar("count", 4) + BVConst(4, 1)
        expr = mux(BVVar("enable", 1), shared, shared ^ shared)
        report = lint_design(_design(next_state={"count": expr}))
        assert report.ok


class TestDeclarationChecks:
    def test_bad_input_width(self):
        report = lint_design(_design(inputs={"enable": 1, "ghostly": 0}))
        assert report.by_check(CHECK_BAD_WIDTH)

    def test_reset_out_of_range(self):
        report = lint_design(
            _design(state=[StateElement("count", 4, reset=16)])
        )
        assert report.by_check(CHECK_RESET_RANGE)

    def test_reset_in_range_clean(self):
        report = lint_design(
            _design(state=[StateElement("count", 4, reset=15)])
        )
        assert not report.by_check(CHECK_RESET_RANGE)

    def test_multiply_driven_input_vs_state(self):
        report = lint_design(_design(inputs={"enable": 1, "count": 4}))
        assert report.by_check(CHECK_MULTIPLY_DRIVEN)

    def test_dangling_driver(self):
        report = lint_design(
            _design(
                next_state={
                    "count": BVVar("count", 4),
                    "nosuch": BVConst(4, 0),
                }
            )
        )
        assert report.by_check(CHECK_DANGLING_DRIVER)


class TestSupportChecks:
    def test_undriven_net(self):
        report = lint_design(
            _design(next_state={"count": BVVar("ghost", 4)})
        )
        names = [f.where for f in report.by_check(CHECK_UNDRIVEN)]
        assert names == ["ghost"]

    def test_property_over_output_not_undriven(self):
        # The engine substitutes output expressions for output names read
        # by a property, so "value" is legal there...
        report = lint_design(_design(), prop=BVVar("value", 4).eq(0))
        assert report.ok

    def test_internal_output_reference_still_undriven(self):
        # ...but an *internal* expression reading an output name is not.
        report = lint_design(
            _design(next_state={"count": BVVar("value", 4)})
        )
        assert report.by_check(CHECK_UNDRIVEN)

    def test_missing_next_state(self):
        report = lint_design(_design(next_state={}))
        assert report.by_check(CHECK_NO_NEXT_STATE)

    def test_width_mismatch(self):
        report = lint_design(
            _design(next_state={"count": BVVar("count", 4).bit(0)})
        )
        assert report.by_check(CHECK_WIDTH_MISMATCH)

    def test_dead_input_is_warning_only(self):
        report = lint_design(
            _design(
                inputs={"enable": 1, "unused": 8},
            )
        )
        findings = report.by_check(CHECK_DEAD_INPUT)
        assert [f.severity for f in findings] == [WARNING]
        assert report.ok  # warnings never block

    def test_dead_state_is_warning_only(self):
        report = lint_design(
            _design(
                state=[
                    StateElement("count", 4, 0),
                    StateElement("shadow", 4, 0),
                ],
                next_state={
                    "count": BVVar("count", 4),
                    "shadow": BVVar("count", 4),
                },
            )
        )
        findings = report.by_check(CHECK_DEAD_STATE)
        assert [f.where for f in findings] == ["shadow"]
        assert report.ok

    def test_dead_state_whitelist(self):
        report = lint_design(
            _design(
                state=[
                    StateElement("count", 4, 0),
                    StateElement("hist_shadow", 4, 0),
                ],
                next_state={
                    "count": BVVar("count", 4),
                    "hist_shadow": BVVar("count", 4),
                },
            ),
            dead_state_ok=("hist_",),
        )
        assert not report.by_check(CHECK_DEAD_STATE)


def _qed_design(share_state: bool = False, wire_input: bool = True) -> Design:
    """A toy QED-composed design: core counter + one QED queue register."""
    qed_instr = BVVar("qed.instr", 4)
    qed_queue = BVVar("qed.queue0", 4)
    count = BVVar("count", 4)
    queue_next = qed_instr if not share_state else qed_instr + count
    assumptions = {}
    if wire_input:
        # The wiring assumption couples the QED input into the core, the
        # way SymbolicQED's qed_wiring_instruction does.
        assumptions["qed.wiring"] = qed_instr.eq(count)
    return Design(
        name="qed-fixture",
        inputs={"qed.instr": 4},
        state=[
            StateElement("count", 4, 0),
            StateElement("qed.queue0", 4, 0),
        ],
        next_state={
            "count": count + BVConst(4, 1),
            "qed.queue0": queue_next,
        },
        outputs={},
        assumptions=assumptions,
    )


class TestQEDReadiness:
    def test_clean_composition(self):
        report = lint_design(
            _qed_design(), prop=BVVar("qed.queue0", 4).eq(BVVar("count", 4))
        )
        assert report.ok

    def test_state_sharing_trips_isolation(self):
        report = lint_design(
            _qed_design(share_state=True),
            prop=BVVar("qed.queue0", 4).eq(BVVar("count", 4)),
        )
        findings = report.by_check(CHECK_QED_ISOLATION)
        assert findings and findings[0].severity == ERROR
        assert "count" in findings[0].message

    def test_unwired_injection_unreachable(self):
        # Property reads only core state and no assumption couples the
        # QED input in: the focus-set constraints can't influence the
        # check, which is the bug this check exists to catch.
        report = lint_design(
            _qed_design(wire_input=False), prop=BVVar("count", 4).eq(0)
        )
        assert report.by_check(CHECK_QED_INJECTION)

    def test_assumption_coupling_reaches_input(self):
        # The same property becomes reachable once the wiring assumption
        # couples qed.instr to the core state the property reads.
        report = lint_design(
            _qed_design(wire_input=True), prop=BVVar("count", 4).eq(0)
        )
        assert not report.by_check(CHECK_QED_INJECTION)


class TestExpressionDigest:
    def test_digest_distinguishes_structure(self):
        a = BVVar("x", 4) + BVConst(4, 1)
        b = BVVar("x", 4) + BVConst(4, 2)
        assert expression_digest(a) != expression_digest(b)
        assert expression_digest(a) == expression_digest(
            BVVar("x", 4) + BVConst(4, 1)
        )

    def test_digest_terminates_on_forged_cycle(self):
        expression_digest(forge_cycle())  # must not hang


class TestBugLibrary:
    def test_real_library_is_clean(self):
        report = lint_bug_library()
        assert report.ok, report.render()

    def test_undeclared_diff_detected(self, monkeypatch):
        # Shrink a bug's declaration to a subset of what it really
        # touches: the stray signals must be reported.
        from repro.uarch import bugs as bugs_module

        bug = bugs_module.bug_by_id("jr_target_offby1")
        monkeypatch.setitem(
            bugs_module._BY_ID,
            "jr_target_offby1",
            # 'pc' still declared; 'cf_target' no longer is.
            __import__("dataclasses").replace(bug, signals=("pc",)),
        )
        report = lint_bug_library()
        findings = report.by_check(CHECK_BUGLIB_UNDECLARED)
        assert any("cf_target" in f.message for f in findings)

    def test_ineffective_declaration_detected(self, monkeypatch):
        # A bug none of whose declared patterns match the diff is not
        # doing what its declaration claims.
        from repro.uarch import bugs as bugs_module

        bug = bugs_module.bug_by_id("cmpi_carry_spec")
        monkeypatch.setitem(
            bugs_module._BY_ID,
            "cmpi_carry_spec",
            __import__("dataclasses").replace(
                bug, signals=("no_such_signal_*",)
            ),
        )
        report = lint_bug_library()
        assert report.by_check(CHECK_BUGLIB_NO_DIFF)
