"""Layer-2 AST analyzers: a tripping and a clean fixture per check,
plus regressions pinning the real sources clean under their own rules."""

import glob
import textwrap

from repro.analysis.code_lint import (
    CHECK_FORK_UNSAFE,
    CHECK_HOT_ALLOC,
    CHECK_HOT_ATTR,
    CHECK_HOT_TRY,
    CHECK_SET_ORDER,
    CHECK_SET_POP,
    lint_file,
    lint_fork_safety,
)


def _lint(source: str):
    return lint_file("fixture.py", text=textwrap.dedent(source))


def _fork(source: str):
    source = textwrap.dedent(source)
    return lint_fork_safety(["fixture.py"], texts={"fixture.py": source})


class TestDeterminism:
    def test_list_of_set_trips(self):
        report = _lint(
            """
            def names(items):
                seen = {i.name for i in items}
                return list(seen)
            """
        )
        assert report.by_check(CHECK_SET_ORDER)

    def test_sorted_set_clean(self):
        report = _lint(
            """
            def names(items):
                seen = {i.name for i in items}
                return sorted(seen)
            """
        )
        assert report.ok

    def test_join_over_set_trips(self):
        report = _lint(
            """
            def render(s: set) -> str:
                return ", ".join(s)
            """
        )
        assert report.by_check(CHECK_SET_ORDER)

    def test_join_over_genexp_on_set_trips(self):
        report = _lint(
            """
            def render(s: set) -> str:
                return ", ".join(str(x) for x in s)
            """
        )
        assert report.by_check(CHECK_SET_ORDER)

    def test_loop_append_trips(self):
        report = _lint(
            """
            def collect(tags):
                out = []
                active = set(tags)
                for t in active:
                    out.append(t)
                return out
            """
        )
        assert report.by_check(CHECK_SET_ORDER)

    def test_loop_append_sorted_afterwards_clean(self):
        report = _lint(
            """
            def collect(tags):
                out = []
                active = set(tags)
                for t in active:
                    out.append(t)
                out.sort()
                return out
            """
        )
        assert report.ok

    def test_order_insensitive_reducers_clean(self):
        report = _lint(
            """
            def stats(s: frozenset):
                return sum(s), min(s), max(s), len(s), any(s), all(s)
            """
        )
        assert report.ok

    def test_set_operations_tracked_through_binops(self):
        report = _lint(
            """
            def merge(a, b):
                left = set(a)
                right = set(b)
                both = left | right
                return list(both)
            """
        )
        assert report.by_check(CHECK_SET_ORDER)

    def test_rebinding_to_sorted_clears_setness(self):
        report = _lint(
            """
            def canonical(x):
                s = set(x)
                s = sorted(s)
                return list(s)
            """
        )
        assert report.ok

    def test_set_pop_trips(self):
        report = _lint(
            """
            def take():
                pending = {1, 2, 3}
                return pending.pop()
            """
        )
        assert report.by_check(CHECK_SET_POP)

    def test_list_pop_clean(self):
        report = _lint(
            """
            def take(stack):
                stack = [1, 2, 3]
                return stack.pop()
            """
        )
        assert report.ok

    def test_suppression_comment(self):
        report = _lint(
            """
            def names(items):
                seen = {i.name for i in items}
                return list(seen)  # lint: ok(code.set-order-escape)
            """
        )
        assert report.ok


class TestHotLoop:
    def test_self_attribute_trips(self):
        report = _lint(
            """
            class S:
                def run(self):
                    i = 0
                    # hot-loop
                    while i < 10:
                        i += self.step
                    return i
            """
        )
        assert report.by_check(CHECK_HOT_ATTR)

    def test_allocation_trips(self):
        report = _lint(
            """
            def run(n):
                i = 0
                # hot-loop
                while i < n:
                    xs = [i]
                    i += 1
                return i
            """
        )
        assert report.by_check(CHECK_HOT_ALLOC)

    def test_try_trips(self):
        report = _lint(
            """
            def run(n):
                i = 0
                # hot-loop
                while i < n:
                    try:
                        i += 1
                    except ValueError:
                        break
                return i
            """
        )
        assert report.by_check(CHECK_HOT_TRY)

    def test_disciplined_loop_clean(self):
        # The idioms the flat-arena solver actually uses: method calls on
        # hoisted locals, constant tuples, slice reads, enumerate/range.
        report = _lint(
            """
            def run(arena, trail, heap):
                n = len(arena)
                i = 0
                # hot-loop
                while i < n:
                    lit = arena[i]
                    trail.append(lit)
                    heap.append((-lit, i))
                    block = arena[i : i + 4]
                    for j, b in enumerate(block):
                        i += 1
                return i
            """
        )
        assert report.ok, report.render()

    def test_cold_line_exempt(self):
        report = _lint(
            """
            def run(n):
                i = 0
                # hot-loop
                while i < n:
                    if i == 0:  # hot-loop: cold
                        rebuilt = [x for x in range(n)]
                    i += 1
                return i
            """
        )
        assert report.ok

    def test_unmarked_loop_not_checked(self):
        report = _lint(
            """
            def run(n):
                out = []
                while n:
                    out.append([n])
                    n -= 1
                return out
            """
        )
        assert report.ok

    def test_solver_hot_loops_stay_clean(self):
        # Regression: the marked loops in the flat-arena CDCL solver obey
        # their own discipline.  If this fails, either the solver grew an
        # allocation/attribute into a hot path (fix the solver) or the
        # discipline legitimately changed (update the analyzer's rules).
        report = lint_file("src/repro/sat/solver.py")
        assert report.ok, report.render()
        with open("src/repro/sat/solver.py", encoding="utf-8") as stream:
            assert stream.read().count("# hot-loop") >= 2

    def test_whole_tree_clean(self):
        # The repo-wide gate the CI lint job enforces, as a tier-1 test.
        paths = sorted(glob.glob("src/repro/**/*.py", recursive=True))
        assert paths
        for path in paths:
            report = lint_file(path)
            assert report.ok, report.render()


class TestForkSafety:
    def test_lock_in_worker_trips(self):
        report = _fork(
            """
            import threading
            from concurrent.futures import ProcessPoolExecutor

            def worker(x):
                lock = threading.Lock()
                return x

            def main(jobs):
                with ProcessPoolExecutor() as pool:
                    pool.map(worker, jobs)
            """
        )
        findings = report.by_check(CHECK_FORK_UNSAFE)
        assert findings and "worker" in findings[0].message

    def test_lock_reached_through_helper_trips(self):
        report = _fork(
            """
            import threading
            from concurrent.futures import ProcessPoolExecutor

            def helper():
                return threading.RLock()

            def worker(x):
                return helper()

            def main(jobs):
                with ProcessPoolExecutor() as pool:
                    pool.submit(worker, jobs)
            """
        )
        assert report.by_check(CHECK_FORK_UNSAFE)

    def test_asyncio_in_marked_entry_trips(self):
        report = _fork(
            """
            import asyncio

            def execute(spec):  # fork-entry
                return asyncio.new_event_loop()
            """
        )
        assert report.by_check(CHECK_FORK_UNSAFE)

    def test_parent_side_lock_clean(self):
        # Locks in the parent (the code *launching* the pool) are fine.
        report = _fork(
            """
            import threading
            from concurrent.futures import ProcessPoolExecutor

            def worker(x):
                return x * 2

            def main(jobs):
                lock = threading.Lock()
                with ProcessPoolExecutor() as pool:
                    pool.map(worker, jobs)
            """
        )
        assert report.ok

    def test_multiprocessing_primitives_clean(self):
        # multiprocessing Events/Queues are fork-aware by design; only
        # threading/asyncio primitives are flagged.
        report = _fork(
            """
            import multiprocessing
            from multiprocessing import Process

            def worker(stop, queue):
                while not stop.is_set():
                    queue.put(1)

            def main():
                stop = multiprocessing.Event()
                queue = multiprocessing.Queue()
                Process(target=worker, args=(stop, queue)).start()
            """
        )
        assert report.ok

    def test_real_worker_tree_stays_clean(self):
        # Regression over the real fork surfaces: scheduler/portfolio
        # workers, the serve executor and the campaign job runner.
        paths = (
            sorted(glob.glob("src/repro/dist/*.py"))
            + sorted(glob.glob("src/repro/serve/*.py"))
            + ["src/repro/eval/campaign.py"]
        )
        report = lint_fork_safety(paths)
        assert report.ok, report.render()
