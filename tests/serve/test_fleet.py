"""Fleet protocol: leases, fence epochs, failure detection, admission,
cache-log replication.

Coordinator tests drive :class:`FleetCoordinator` directly on the queue's
loop with synthetic sweep times (no real reaper, no sleeps for expiry);
the end-to-end test runs a real :class:`FleetWorker` in thread mode
against a fleet-only :class:`LocalServer`.
"""

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.serve.client import ServeClient, ServeError
from repro.serve.fleet import (
    AdmissionController,
    CacheFollower,
    FleetCoordinator,
    FleetWorker,
)
from repro.serve.queue import JobQueue, JobState, _selftest_entry
from repro.serve.server import LocalServer

from serve_helpers import make_spec as spec


def run(coro):
    return asyncio.run(coro)


async def with_fleet(body, *, lease_seconds=0.5, heartbeat_seconds=0.1, **kwargs):
    kwargs.setdefault("entry", _selftest_entry)
    kwargs.setdefault("use_processes", False)
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("retry_backoff_base", 0.01)
    queue = JobQueue(**kwargs)
    fleet = FleetCoordinator(
        queue,
        lease_seconds=lease_seconds,
        heartbeat_seconds=heartbeat_seconds,
    )
    await queue.start()
    try:
        return await body(queue, fleet)
    finally:
        await queue.stop()


async def wait_for(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return False


def commit_body(lease, **extra):
    return {
        "worker_id": lease.get("worker_id", "w1"),
        "lease_id": lease["lease_id"],
        "job_id": lease["job_id"],
        "fence": lease["fence"],
        **extra,
    }


class TestLeaseFence:
    def test_remote_commit_runs_the_local_completion_path(self):
        async def body(queue, fleet):
            job = queue.submit(spec())
            fleet.register({"worker_id": "w1"})
            lease = fleet.lease({"worker_id": "w1"})["lease"]
            assert lease["job_id"] == job.job_id
            assert lease["fence"] == 1
            assert job.state is JobState.RUNNING
            result = _selftest_entry(lease["spec"], job.job_id, None)
            resp = fleet.complete(commit_body(lease, result=result))
            assert resp["accepted"] is True
            assert job.state is JobState.DONE
            assert job.record["detected_by"] == {"eddiv": True}
            assert queue.executed == 1
            assert not fleet.has_active_leases()

        run(with_fleet(body))

    def test_duplicate_commit_is_rejected_not_double_applied(self):
        async def body(queue, fleet):
            job = queue.submit(spec())
            fleet.register({"worker_id": "w1"})
            lease = fleet.lease({"worker_id": "w1"})["lease"]
            result = _selftest_entry(lease["spec"], job.job_id, None)
            assert fleet.complete(commit_body(lease, result=result))["accepted"]
            again = fleet.complete(commit_body(lease, result=result))
            assert again == {"accepted": False, "reason": "duplicate_commit"}
            assert queue.executed == 1
            assert fleet.duplicate_commits == 1

        run(with_fleet(body))

    def test_expired_lease_requeues_job_and_fences_the_zombie(self):
        async def body(queue, fleet):
            job = queue.submit(spec())
            fleet.register({"worker_id": "w1"})
            lease = fleet.lease({"worker_id": "w1"})["lease"]
            result = _selftest_entry(lease["spec"], job.job_id, None)
            # The worker goes silent past the lease TTL: the job goes back
            # to the queue (one reassignment) and the lease token dies.
            fleet.sweep(time.monotonic() + 60.0)
            assert fleet.lease_reassignments == 1
            assert job.state is JobState.QUEUED
            assert job.attempts == 1
            # The zombie resumes and commits its (correct!) result -- too
            # late: the fence comparison rejects it, nothing is recorded.
            late = fleet.complete(commit_body(lease, result=result))
            assert late == {"accepted": False, "reason": "stale_fence"}
            assert fleet.fenced_rejections == 1
            assert job.state is JobState.QUEUED
            assert queue.executed == 0
            # A second worker picks the job up under a *newer* fence and
            # its commit lands normally.
            fleet.register({"worker_id": "w2"})
            assert await wait_for(
                lambda: fleet.lease({"worker_id": "w2"}).get("lease")
                is not None
                or job.state is JobState.RUNNING
            )
            # wait_for may have consumed the grant inside the predicate;
            # recover the active lease from the coordinator table.
            (lease2,) = fleet._leases.values()
            assert lease2.fence == 2
            resp = fleet.complete(
                {
                    "worker_id": "w2",
                    "lease_id": lease2.lease_id,
                    "job_id": job.job_id,
                    "fence": lease2.fence,
                    "result": result,
                }
            )
            assert resp["accepted"] is True
            assert job.state is JobState.DONE
            assert queue.executed == 1

        run(with_fleet(body))

    def test_heartbeat_renews_lease_so_slow_solves_survive(self):
        async def body(queue, fleet):
            job = queue.submit(spec())
            fleet.register({"worker_id": "w1"})
            lease = fleet.lease({"worker_id": "w1"})["lease"]
            # Beat well past the original TTL; each beat pushes expiry out.
            for _ in range(4):
                await asyncio.sleep(0.2)
                resp = fleet.heartbeat(commit_body(lease))
                assert resp["lease"] == "ok"
                fleet.sweep(time.monotonic())
            assert job.state is JobState.RUNNING
            assert fleet.lease_reassignments == 0
            assert fleet.has_active_leases()

        run(with_fleet(body, lease_seconds=0.5))

    def test_heartbeat_for_expired_lease_reports_revoked(self):
        async def body(queue, fleet):
            queue.submit(spec())
            fleet.register({"worker_id": "w1"})
            lease = fleet.lease({"worker_id": "w1"})["lease"]
            fleet.sweep(time.monotonic() + 60.0)
            resp = fleet.heartbeat(commit_body(lease))
            assert resp["lease"] == "revoked"

        run(with_fleet(body))

    def test_crash_report_requeues_through_retry_machinery(self):
        async def body(queue, fleet):
            job = queue.submit(spec())
            fleet.register({"worker_id": "w1"})
            lease = fleet.lease({"worker_id": "w1"})["lease"]
            resp = fleet.complete(commit_body(lease, crashed=True))
            assert resp["accepted"] is True and resp["requeued"] is True
            assert job.state is JobState.QUEUED
            assert queue.retried == 1
            assert fleet.crash_reports == 1

        run(with_fleet(body))

    def test_repeated_remote_crashes_quarantine_the_spec(self):
        async def body(queue, fleet):
            job = queue.submit(spec("__crash__"))
            fleet.register({"worker_id": "w1"})
            for attempt in range(queue.max_retries + 1):
                assert await wait_for(
                    lambda: fleet.lease({"worker_id": "w1"}).get("lease")
                    is not None
                    or bool(fleet._leases)
                )
                (lease,) = fleet._leases.values()
                fleet.complete(
                    {
                        "worker_id": "w1",
                        "lease_id": lease.lease_id,
                        "job_id": job.job_id,
                        "fence": lease.fence,
                        "crashed": True,
                    }
                )
            assert job.state is JobState.FAILED
            assert queue.quarantined
            # The quarantined spec now fails fast on resubmission.
            rejected = queue.submit(spec("__crash__"))
            assert rejected.state is JobState.FAILED

        run(with_fleet(body))


class TestFailureDetection:
    def test_live_suspect_dead_transitions_with_heartbeat_grace(self):
        async def body(queue, fleet):
            fleet.register({"worker_id": "w1"})
            now = time.monotonic()
            counts = fleet.worker_counts()
            assert counts["live"] == 1
            fleet.sweep(now + fleet.suspect_after + 0.01)
            assert fleet.worker_counts()["suspect"] == 1
            fleet.sweep(now + fleet.dead_after + 0.01)
            assert fleet.worker_counts()["dead"] == 1
            assert fleet.workers_died == 1
            # Any request from the worker revives it.
            fleet.heartbeat({"worker_id": "w1"})
            assert fleet.worker_counts()["live"] == 1
            assert fleet.workers_revived == 1

        run(with_fleet(body))

    def test_dead_worker_leases_expire_before_the_lease_clock(self):
        async def body(queue, fleet):
            job = queue.submit(spec())
            fleet.register({"worker_id": "w1"})
            fleet.lease({"worker_id": "w1"})
            # Death grace (4 beats = 0.4s) is far shorter than the lease
            # TTL: the sweep must reassign via death, not lease expiry.
            fleet.sweep(time.monotonic() + fleet.dead_after + 0.01)
            assert fleet.lease_reassignments == 1
            assert job.state is JobState.QUEUED

        run(with_fleet(body, lease_seconds=60.0))

    def test_deregister_releases_leases_immediately(self):
        async def body(queue, fleet):
            job = queue.submit(spec())
            fleet.register({"worker_id": "w1"})
            fleet.lease({"worker_id": "w1"})
            resp = fleet.deregister({"worker_id": "w1"})
            assert resp["removed"] is True
            assert job.state is JobState.QUEUED
            assert not fleet.has_active_leases()

        run(with_fleet(body))

    def test_unregistered_worker_is_told_to_reregister(self):
        async def body(queue, fleet):
            queue.submit(spec())
            resp = fleet.lease({"worker_id": "ghost"})
            assert resp == {"lease": None, "reregister": True}

        run(with_fleet(body))


class TestWorkerEndToEnd:
    def test_thread_worker_solves_jobs_over_http(self, tmp_path):
        server = LocalServer(
            cache_dir=str(tmp_path),
            workers=0,
            entry=_selftest_entry,
            use_processes=False,
            fleet=True,
            fleet_kwargs=dict(lease_seconds=5.0, heartbeat_seconds=0.2),
        )
        with server as url:
            client = ServeClient(url)
            # Fleet-only with no workers attached: not ready, and says why.
            health = client.healthz()
            assert health["ok"] is False
            assert health["no_executors"] is True
            view_a = client.submit(spec=spec())
            view_b = client.submit(spec=spec("__sleep:0.05__"))
            worker = FleetWorker(
                url,
                worker_id="wt-1",
                entry=_selftest_entry,
                use_processes=False,
                poll_seconds=0.05,
                max_jobs=2,
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            final_a = client.wait_done(view_a.job_id, timeout=30)
            final_b = client.wait_done(view_b.job_id, timeout=30)
            thread.join(timeout=30)
            assert final_a.state == "done"
            assert final_a.record["detected_by"] == {"eddiv": True}
            assert final_b.state == "done"
            assert worker.commits_accepted == 2
            # Per-bound progress crossed the wire (heartbeat/commit relay).
            assert final_a.progress and final_a.progress[0]["verdict"] == "unsat"
            stats = client.stats()["queue"]["fleet"]
            assert stats["commits_accepted"] == 2
            assert stats["fenced_commits_rejected"] == 0
            from repro.obs.metrics import parse_prometheus

            metrics = parse_prometheus(client.metrics_text())
            assert metrics.get("qed_fleet_commits_total") == 2

        # Resubmission after restart over the same cache dir is a warm hit.
        with LocalServer(
            cache_dir=str(tmp_path),
            workers=0,
            entry=_selftest_entry,
            use_processes=False,
            fleet=True,
        ) as url:
            again = ServeClient(url).submit(spec=spec())
            assert again.cache_hit is True

    def test_worker_error_outcome_fails_job_without_retry(self, tmp_path):
        with LocalServer(
            cache_dir=None,
            workers=0,
            entry=_selftest_entry,
            use_processes=False,
            fleet=True,
            fleet_kwargs=dict(heartbeat_seconds=0.2),
        ) as url:
            client = ServeClient(url)
            view = client.submit(spec=spec())

            def raising_entry(spec_dict, job_id="", progress=None, **kwargs):
                raise ValueError("boom")

            worker = FleetWorker(
                url,
                worker_id="wt-err",
                entry=raising_entry,
                use_processes=False,
                poll_seconds=0.05,
                max_jobs=1,
            )
            worker.run()
            final = client.wait_done(view.job_id, timeout=30)
            assert final.state == "failed"
            assert "boom" in (final.error or "")
            stats = client.stats()["queue"]
            assert stats["retried"] == 0


class TestAdmission:
    def test_token_bucket_rate_and_retry_after(self):
        now = [0.0]
        ac = AdmissionController(rate=1.0, burst=2.0, clock=lambda: now[0])
        assert ac.admit("a") is None
        assert ac.admit("a") is None
        retry_after = ac.admit("a")
        assert retry_after == pytest.approx(1.0)
        now[0] += 1.0
        assert ac.admit("a") is None
        # Buckets are per-client: "a" being drained never starves "b".
        assert ac.admit("b") is None
        stats = ac.stats_dict()
        assert stats["admitted"] == 4 and stats["rejected"] == 1

    def test_bucket_table_is_lru_bounded(self):
        ac = AdmissionController(rate=1.0, burst=1.0, max_clients=2)
        assert ac.admit("a") is None
        assert ac.admit("b") is None
        assert ac.admit("c") is None  # evicts "a"
        assert ac.stats_dict()["clients_tracked"] == 2
        # "a" comes back with a fresh (full) bucket -- eviction never
        # penalizes, it only forgets.
        assert ac.admit("a") is None

    def test_queue_depth_bound_answers_429_with_retry_after(self):
        with LocalServer(
            cache_dir=None,
            workers=1,
            entry=_selftest_entry,
            use_processes=False,
            max_queue_depth=1,
        ) as url:
            client = ServeClient(url)
            blocker = client.submit(spec=spec("__sleep:1.5__"))
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if client.job(blocker.job_id).state == "running":
                    break
                time.sleep(0.02)
            assert client.submit(spec=spec("__sleep:0.01__", tag=1))
            with pytest.raises(ServeError) as excinfo:
                client.submit(spec=spec("__sleep:0.01__", tag=2))
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after >= 0.5
            stats = client.stats()["queue"]
            assert stats["queue_full_rejections"] == 1
            assert stats["max_queue_depth"] == 1
            # Let the blocker finish so shutdown doesn't abandon its task.
            client.wait_done(blocker.job_id, timeout=30)

    def test_client_rate_limit_answers_429_with_retry_after_header(self):
        with LocalServer(
            cache_dir=None,
            workers=1,
            entry=_selftest_entry,
            use_processes=False,
            admission=dict(rate=0.5, burst=1.0),
        ) as url:
            host, port = url.replace("http://", "").split(":")

            def post_jobs():
                conn = http.client.HTTPConnection(host, int(port), timeout=10)
                try:
                    conn.request(
                        "POST",
                        "/jobs",
                        body=json.dumps({"spec": spec().canonical_dict()}),
                        headers={
                            "Content-Type": "application/json",
                            "X-Client-Id": "greedy",
                        },
                    )
                    resp = conn.getresponse()
                    return resp.status, resp.getheader("Retry-After"), resp.read()
                finally:
                    conn.close()

            status, _, _ = post_jobs()
            assert status in (200, 202)
            status, retry_after, raw = post_jobs()
            assert status == 429
            assert retry_after is not None and int(retry_after) >= 1
            assert json.loads(raw)["retry_after"] > 0
            stats = ServeClient(url).stats()["http"]["admission"]
            assert stats["rejected"] == 1


class TestReplication:
    def test_follower_mirrors_log_and_serves_warm_hits(self, tmp_path):
        primary_dir = tmp_path / "primary"
        follower_dir = tmp_path / "follower"
        with LocalServer(
            cache_dir=str(primary_dir),
            workers=1,
            entry=_selftest_entry,
            use_processes=False,
        ) as url:
            client = ServeClient(url)
            view = client.submit(spec=spec())
            final = client.wait_done(view.job_id, timeout=30)
            assert final.state == "done"
            follower = CacheFollower(url, str(follower_dir))
            assert follower.sync() > 0
            assert follower.sync() == 0  # caught up: idempotent
            cache_key = final.record["cache_key"]
        # Primary is gone; the standby replays the mirror and serves it.
        from repro.serve.cache import ResultCache

        entry = ResultCache(str(follower_dir)).get(cache_key)
        assert entry is not None
        assert entry.record["detected_by"] == {"eddiv": True}

    def test_follower_resets_when_primary_log_shrinks(self, tmp_path):
        primary_a = tmp_path / "a"
        primary_b = tmp_path / "b"
        follower_dir = tmp_path / "mirror"
        with LocalServer(
            cache_dir=str(primary_a),
            workers=1,
            entry=_selftest_entry,
            use_processes=False,
        ) as url:
            client = ServeClient(url)
            client.wait_done(
                client.submit(spec=spec()).job_id, timeout=30
            )
            client.wait_done(
                client.submit(spec=spec(tag=2)).job_id, timeout=30
            )
            follower = CacheFollower(url, str(follower_dir))
            follower.sync()
        # A different (shorter-logged) primary takes over the endpoint.
        with LocalServer(
            cache_dir=str(primary_b),
            workers=1,
            entry=_selftest_entry,
            use_processes=False,
        ) as url:
            client = ServeClient(url)
            final = client.wait_done(
                client.submit(spec=spec(tag=3)).job_id, timeout=30
            )
            follower = CacheFollower(url, str(follower_dir))
            follower.sync()
            assert follower.resets == 1
            entry = follower.open_cache().get(final.record["cache_key"])
            assert entry is not None


class TestJitter:
    def test_client_backoff_jitter_is_seed_deterministic(self):
        c1 = ServeClient("127.0.0.1:9", jitter_seed="fleet-test")
        c2 = ServeClient("127.0.0.1:9", jitter_seed="fleet-test")
        c3 = ServeClient("127.0.0.1:9", jitter_seed="other")
        seq1 = [c1._backoff_delay(i) for i in range(1, 6)]
        seq2 = [c2._backoff_delay(i) for i in range(1, 6)]
        seq3 = [c3._backoff_delay(i) for i in range(1, 6)]
        assert seq1 == seq2
        assert seq1 != seq3
        for attempt, delay in enumerate(seq1, start=1):
            assert 0 < delay <= 2.0

    def test_queue_backoff_jitter_is_seeded_and_decorrelated(self):
        q1 = JobQueue(workers=1, backoff_seed=7)
        q2 = JobQueue(workers=1, backoff_seed=7)
        q3 = JobQueue(workers=1, backoff_seed=8)
        d1 = [q1._backoff_delay(a, key="k") for a in range(1, 5)]
        assert d1 == [q2._backoff_delay(a, key="k") for a in range(1, 5)]
        assert d1 != [q3._backoff_delay(a, key="k") for a in range(1, 5)]
        # Different jobs' retries land at different instants (decorrelated).
        assert d1 != [q1._backoff_delay(a, key="other") for a in range(1, 5)]
        for attempt, delay in enumerate(d1, start=1):
            assert 0 < delay <= q1.retry_backoff_cap
