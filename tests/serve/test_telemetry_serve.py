"""Serving-layer telemetry: per-job heartbeat ring + ``/telemetry``.

The queue-level tests drive ``_on_progress`` with tagged
``__telemetry__`` payloads exactly as a worker ships them; the HTTP
tests use a deterministic entry that ships a scripted batch; the live
test solves a real EDDI-V job through the process-pool server and
asserts the acceptance contract -- at least two heartbeats with
monotonically non-decreasing conflict counts.
"""

import asyncio
import json
import urllib.error
import urllib.request

import pytest

from repro.serve import LocalServer, ServeClient
from repro.serve.cache import ResultCache
from repro.serve.queue import (
    TELEMETRY_RING,
    JobQueue,
    _selftest_entry,
)

from serve_helpers import make_spec as spec


async def wait_terminal(queue, job, timeout=20.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not job.state.terminal and loop.time() < deadline:
        await queue.wait(job, since=job.version, timeout=deadline - loop.time())
    assert job.state.terminal, f"job stuck in {job.state} ({job.error})"
    return job


def run(coro):
    return asyncio.run(coro)


async def with_queue(body, **kwargs):
    kwargs.setdefault("entry", _selftest_entry)
    kwargs.setdefault("use_processes", False)
    queue = JobQueue(**kwargs)
    await queue.start()
    try:
        return await body(queue)
    finally:
        await queue.stop()


def heartbeat(seq, conflicts, site="restart", **extra):
    hb = {"seq": seq, "pid": 1234, "site": site, "conflicts": conflicts}
    hb.update(extra)
    return hb


class TestTelemetryRing:
    def test_tagged_payload_fills_ring_without_version_bump(self):
        async def body(queue):
            job = queue.submit(spec())
            await wait_terminal(queue, job)
            version = job.version
            progress_len = len(job.progress)
            queue._on_progress(
                job.job_id,
                {"__telemetry__": [heartbeat(0, 5), heartbeat(1, 9)]},
            )
            assert job.telemetry_total == 2
            assert [hb["conflicts"] for hb in job.telemetry] == [5, 9]
            # telemetry is a plain poll: no long-poll wakeup, and the
            # per-bound progress stream stays untouched
            assert job.version == version
            assert len(job.progress) == progress_len

        run(with_queue(body))

    def test_ring_trims_to_bound_and_reports_dropped(self):
        async def body(queue):
            job = queue.submit(spec())
            await wait_terminal(queue, job)
            batch = [heartbeat(i, i) for i in range(TELEMETRY_RING + 50)]
            queue._on_progress(job.job_id, {"__telemetry__": batch})
            assert len(job.telemetry) == TELEMETRY_RING
            assert job.telemetry_total == TELEMETRY_RING + 50
            view = queue.telemetry_dict(job.job_id)
            assert view["dropped"] == 50
            assert view["total"] == TELEMETRY_RING + 50
            assert view["heartbeats"][0]["conflicts"] == 50

        run(with_queue(body))

    def test_since_filters_incrementally(self):
        async def body(queue):
            job = queue.submit(spec())
            await wait_terminal(queue, job)
            queue._on_progress(
                job.job_id,
                {"__telemetry__": [heartbeat(i, i * 10) for i in range(5)]},
            )
            first = queue.telemetry_dict(job.job_id, since=0)
            assert len(first["heartbeats"]) == 5
            later = queue.telemetry_dict(job.job_id, since=first["total"])
            assert later["heartbeats"] == []
            queue._on_progress(
                job.job_id, {"__telemetry__": [heartbeat(5, 99)]}
            )
            newest = queue.telemetry_dict(job.job_id, since=first["total"])
            assert [hb["conflicts"] for hb in newest["heartbeats"]] == [99]

        run(with_queue(body))

    def test_unknown_job_returns_none(self):
        async def body(queue):
            assert queue.telemetry_dict("job-999999") is None

        run(with_queue(body))

    def test_malformed_payload_is_ignored(self):
        async def body(queue):
            job = queue.submit(spec())
            await wait_terminal(queue, job)
            queue._on_progress(job.job_id, {"__telemetry__": "not-a-list"})
            queue._on_progress(
                job.job_id, {"__telemetry__": ["not-a-dict", heartbeat(0, 1)]}
            )
            assert job.telemetry_total == 1

        run(with_queue(body))


class TestHttpTelemetry:
    def test_endpoint_serves_ring_since_and_404(self, tmp_path):
        with LocalServer(
            cache=ResultCache(None),
            entry=_selftest_entry,
            use_processes=False,
            flight_dir=str(tmp_path),
        ) as url:
            body = json.dumps({"spec": spec().canonical_dict()}).encode()
            req = urllib.request.Request(
                url + "/jobs",
                data=body,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(req) as resp:
                job = json.load(resp)["job"]
            for _ in range(100):
                with urllib.request.urlopen(
                    f"{url}/jobs/{job['job_id']}?wait=1"
                ) as resp:
                    view = json.load(resp)["job"]
                if view["state"] in ("done", "failed", "cancelled"):
                    break
            assert view["state"] == "done"

            with urllib.request.urlopen(
                f"{url}/jobs/{job['job_id']}/telemetry"
            ) as resp:
                payload = json.load(resp)["telemetry"]
            assert payload["job_id"] == job["job_id"]
            assert payload["state"] == "done"
            assert payload["dropped"] == 0

            # since= beyond the total returns an empty tail
            with urllib.request.urlopen(
                f"{url}/jobs/{job['job_id']}/telemetry?since=999999"
            ) as resp:
                tail = json.load(resp)["telemetry"]
            assert tail["heartbeats"] == []

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url + "/jobs/job-999999/telemetry")
            assert excinfo.value.code == 404

            # bad since= -> 400, non-GET -> 405
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"{url}/jobs/{job['job_id']}/telemetry?since=abc"
                )
            assert excinfo.value.code == 400
            req = urllib.request.Request(
                f"{url}/jobs/{job['job_id']}/telemetry",
                data=b"{}",
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(req)
            assert excinfo.value.code == 405

    def test_jobs_listing_summarises_jobs(self, tmp_path):
        with LocalServer(
            cache=ResultCache(None),
            entry=_selftest_entry,
            use_processes=False,
            flight_dir=str(tmp_path),
        ) as url:
            body = json.dumps({"spec": spec().canonical_dict()}).encode()
            req = urllib.request.Request(
                url + "/jobs", data=body, method="POST"
            )
            with urllib.request.urlopen(req) as resp:
                job = json.load(resp)["job"]
            with urllib.request.urlopen(url + "/jobs") as resp:
                rows = json.load(resp)["jobs"]
            assert len(rows) == 1
            row = rows[0]
            assert row["job_id"] == job["job_id"]
            assert set(row) >= {
                "state",
                "bug_id",
                "version",
                "bound",
                "telemetry_total",
            }


class TestLiveSolveTelemetry:
    def test_real_solve_streams_monotone_heartbeats(self, tmp_path):
        """Acceptance: a live EDDI-V solve produces >=2 heartbeats whose
        conflict counts increase monotonically (per solving process)."""
        with LocalServer(cache_dir=str(tmp_path), workers=2) as url:
            client = ServeClient(url)
            job = client.submit(bug_id="wrport_collision")
            done = client.wait_done(job.job_id, timeout=120.0)
            assert done.state == "done"
            payload = client.telemetry(job.job_id)
            heartbeats = payload["heartbeats"]
            assert payload["total"] >= 2
            assert len(heartbeats) >= 2
            by_pid = {}
            for hb in heartbeats:
                if hb["site"] == "bound":
                    continue  # run-cumulative totals, separate stream
                by_pid.setdefault(hb["pid"], []).append(hb["conflicts"])
            assert by_pid, "no solver-site heartbeats recorded"
            for conflicts in by_pid.values():
                assert conflicts == sorted(conflicts)
            solver_sites = {
                hb["site"] for hb in heartbeats if hb["site"] != "bound"
            }
            assert solver_sites <= {"restart", "db_reduce", "deadline_poll"}
            # incremental polling with since= composes with the ring
            tail = client.telemetry(job.job_id, since=payload["total"])
            assert tail["heartbeats"] == []
