"""Two-tier result cache: LRU + persistence + monotone upgrade semantics."""

import json
import os

import pytest

from repro.serve.cache import ResultCache

FP = "f" * 64


def record(bug_id="b", **extra):
    data = {"bug_id": bug_id, "detected_by": {"eddiv": True}}
    data.update(extra)
    return data


class TestBasics:
    def test_put_get_and_counters(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get("k1") is None
        cache.put("k1", record(), fingerprint=FP, definitive=True)
        entry = cache.get("k1")
        assert entry is not None and entry.record["bug_id"] == "b"
        assert cache.hits == 1 and cache.misses == 1 and cache.puts == 1
        assert "k1" in cache and len(cache) == 1

    def test_fingerprint_check_on_get(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("k1", record(), fingerprint=FP, definitive=True)
        assert cache.get("k1", fingerprint="0" * 64) is None
        assert cache.get("k1", fingerprint=FP) is not None

    def test_memory_only_mode(self):
        cache = ResultCache(None)
        cache.put("k1", record(), fingerprint=FP, definitive=True)
        assert cache.get("k1") is not None
        assert cache.log_path is None


class TestPersistence:
    def test_survives_restart(self, tmp_path):
        directory = str(tmp_path)
        first = ResultCache(directory)
        first.put("k1", record("x"), fingerprint=FP, definitive=True)
        first.put("k2", record("y"), fingerprint=FP, definitive=False)

        reborn = ResultCache(directory)
        assert reborn.get("k1").record["bug_id"] == "x"
        entry = reborn.get("k2")
        assert entry.record["bug_id"] == "y" and not entry.definitive
        assert len(reborn) == 2

    def test_lru_eviction_falls_back_to_disk(self, tmp_path):
        cache = ResultCache(str(tmp_path), memory_limit=2)
        for index in range(3):
            cache.put(
                f"k{index}", record(f"b{index}"), fingerprint=FP, definitive=True
            )
        assert len(cache._memory) == 2  # k0 evicted from the hot tier
        entry = cache.get("k0")  # ...but still served from the log
        assert entry is not None and entry.record["bug_id"] == "b0"

    def test_torn_tail_line_is_skipped(self, tmp_path):
        directory = str(tmp_path)
        cache = ResultCache(directory)
        cache.put("k1", record(), fingerprint=FP, definitive=True)
        with open(cache.log_path, "ab") as stream:
            stream.write(b'{"format": 1, "key": "k2", "trunc')  # crash mid-write
        reborn = ResultCache(directory)
        assert reborn.get("k1") is not None
        assert reborn.get("k2") is None


class TestMonotoneUpgrade:
    def test_unknown_upgrades_to_definitive(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("k", record(state="unknown"), fingerprint=FP, definitive=False)
        cache.put("k", record(state="proved"), fingerprint=FP, definitive=True)
        entry = cache.get("k")
        assert entry.definitive and entry.record["state"] == "proved"
        assert cache.upgrades == 1

    def test_definitive_never_downgrades(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("k", record(state="proved"), fingerprint=FP, definitive=True)
        kept = cache.put(
            "k", record(state="unknown"), fingerprint=FP, definitive=False
        )
        assert kept.definitive and kept.record["state"] == "proved"
        entry = cache.get("k")
        assert entry.definitive and entry.record["state"] == "proved"
        assert cache.downgrades_rejected == 1

    def test_replay_applies_the_same_rule(self, tmp_path):
        """A hand-written log with a late downgrade line must replay to the
        definitive entry (persistence cannot resurrect a weaker answer)."""
        directory = str(tmp_path)
        cache = ResultCache(directory)
        cache.put("k", record(state="proved"), fingerprint=FP, definitive=True)
        weaker = {
            "format": 1,
            "key": "k",
            "fingerprint": FP,
            "definitive": False,
            "record": record(state="unknown"),
            "spec": {},
            "created_at": 0.0,
        }
        with open(cache.log_path, "a", encoding="utf-8") as stream:
            stream.write(json.dumps(weaker) + "\n")
        reborn = ResultCache(directory)
        entry = reborn.get("k")
        assert entry.definitive and entry.record["state"] == "proved"


class TestInvalidation:
    def test_invalidate_fingerprint(self, tmp_path):
        cache = ResultCache(str(tmp_path), memory_limit=1)
        other = "0" * 64
        cache.put("k1", record(), fingerprint=FP, definitive=True)
        cache.put("k2", record(), fingerprint=other, definitive=True)
        cache.put("k3", record(), fingerprint=FP, definitive=True)
        dropped = cache.invalidate_fingerprint(FP)
        assert dropped == 2
        assert cache.get("k1") is None and cache.get("k3") is None
        assert cache.get("k2") is not None

    def test_invalidation_survives_restart(self, tmp_path):
        """The tombstone line must keep invalidated entries dead on replay,
        while entries written after it come back."""
        directory = str(tmp_path)
        cache = ResultCache(directory)
        cache.put("old", record("stale"), fingerprint=FP, definitive=True)
        assert cache.invalidate_fingerprint(FP) == 1
        cache.put("new", record("fresh"), fingerprint=FP, definitive=True)

        reborn = ResultCache(directory)
        assert reborn.get("old") is None
        assert reborn.get("new").record["bug_id"] == "fresh"
        assert len(reborn) == 1

    def test_memory_limit_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(str(tmp_path), memory_limit=0)

    def test_creates_cache_directory(self, tmp_path):
        directory = os.path.join(str(tmp_path), "nested", "cache")
        ResultCache(directory)
        assert os.path.isdir(directory)
