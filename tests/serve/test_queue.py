"""Job queue: priority, coalescing, cancellation, crash recovery, caching.

Most tests drive the queue with the deterministic
:func:`repro.serve.queue._selftest_entry` double on a *thread* executor
(fast, no fork); the crash-recovery test uses real worker processes
because killing the worker is the point.
"""

import asyncio

import pytest

from repro.serve.cache import ResultCache
from repro.serve.queue import JobQueue, JobState, _selftest_entry

from serve_helpers import make_spec as spec


async def wait_terminal(queue, job, timeout=20.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not job.state.terminal and loop.time() < deadline:
        await queue.wait(job, since=job.version, timeout=deadline - loop.time())
    assert job.state.terminal, f"job stuck in {job.state} ({job.error})"
    return job


def run(coro):
    return asyncio.run(coro)


async def with_queue(body, **kwargs):
    kwargs.setdefault("entry", _selftest_entry)
    kwargs.setdefault("use_processes", False)
    queue = JobQueue(**kwargs)
    await queue.start()
    try:
        return await body(queue)
    finally:
        await queue.stop()


class TestScheduling:
    def test_submit_executes_and_records(self):
        async def body(queue):
            job = queue.submit(spec())
            await wait_terminal(queue, job)
            assert job.state is JobState.DONE
            assert job.record["detected_by"] == {"eddiv": True}
            assert job.record["cache_key"] == job.cache_key
            assert queue.executed == 1
            # The selftest entry emits one progress event.
            assert job.progress and job.progress[0]["verdict"] == "unsat"

        run(with_queue(body))

    def test_priority_order_single_worker(self):
        async def body(queue):
            blocker = queue.submit(spec("__sleep:0.4__"))
            # Wait until the blocker actually occupies the only slot, so
            # the later submissions really contend on the heap.
            while blocker.state is JobState.QUEUED:
                await queue.wait(blocker, since=blocker.version, timeout=1.0)
            low = queue.submit(spec("__echo__", tag="low"), priority=0)
            high = queue.submit(spec("__echo__", tag="high"), priority=5)
            await wait_terminal(queue, low)
            await wait_terminal(queue, high)
            assert high.started_at < low.started_at

        run(with_queue(body))

    def test_cancel_queued_job(self):
        async def body(queue):
            blocker = queue.submit(spec("__sleep:0.4__"))
            victim = queue.submit(spec("__echo__", tag="victim"))
            assert queue.cancel(victim.job_id) is True
            assert victim.state is JobState.CANCELLED
            await wait_terminal(queue, blocker)
            # Scheduler must skip the cancelled entry, not run it.
            await asyncio.sleep(0.05)
            assert victim.state is JobState.CANCELLED
            assert queue.executed == 1 and queue.cancelled == 1

        run(with_queue(body))

    def test_cancel_spares_coalesced_waiters(self):
        async def body(queue):
            blocker = queue.submit(spec("__sleep:0.4__"))
            shared = queue.submit(spec("__echo__", tag="shared"))
            twin = queue.submit(spec("__echo__", tag="shared"))
            assert twin is shared and shared.coalesced == 1
            # One waiter must not tear down the other's solve.
            assert queue.cancel(shared.job_id) is False
            assert shared.state is JobState.QUEUED
            assert shared.cancel_requested
            await wait_terminal(queue, blocker)
            await wait_terminal(queue, shared)
            assert shared.state is JobState.DONE

        run(with_queue(body))

    def test_cancel_running_is_best_effort(self):
        async def body(queue):
            job = queue.submit(spec("__sleep:0.3__"))
            while job.state is JobState.QUEUED:
                await queue.wait(job, since=job.version, timeout=1.0)
            assert queue.cancel(job.job_id) is False
            assert job.cancel_requested
            await wait_terminal(queue, job)
            assert job.state is JobState.DONE  # the solve still lands

        run(with_queue(body))

    def test_unknown_job_raises(self):
        async def body(queue):
            with pytest.raises(KeyError):
                queue.cancel("job-404")

        run(with_queue(body))


class TestCoalescing:
    def test_identical_inflight_specs_share_one_solve(self):
        async def body(queue):
            first = queue.submit(spec("__sleep:0.3__"))
            second = queue.submit(spec("__sleep:0.3__"))
            third = queue.submit(spec("__sleep:0.3__"))
            assert second is first and third is first
            assert first.coalesced == 2
            await wait_terminal(queue, first)
            assert queue.executed == 1
            assert queue.coalesced == 2
            assert queue.submitted == 3

        run(with_queue(body))

    def test_different_specs_do_not_coalesce(self):
        async def body(queue):
            a = queue.submit(spec("__echo__", tag="a"))
            b = queue.submit(spec("__echo__", tag="b"))
            assert a is not b
            await wait_terminal(queue, a)
            await wait_terminal(queue, b)
            assert queue.executed == 2

        run(with_queue(body, workers=2))


class TestCacheIntegration:
    def test_cache_hit_skips_execution(self, tmp_path):
        cache = ResultCache(str(tmp_path))

        async def body(queue):
            cold = queue.submit(spec())
            await wait_terminal(queue, cold)
            warm = queue.submit(spec())
            assert warm.state is JobState.DONE and warm.cache_hit
            assert warm.record["served_from_cache"] is True
            assert warm.record["cache_key"] == cold.cache_key
            assert queue.executed == 1 and queue.cache_hits == 1

        run(with_queue(body, cache=cache))

    def test_force_resolve_refreshes_nondefinitive_entries(self, tmp_path):
        """force=True bypasses the cache read; the fresh (definitive)
        result upgrades a non-definitive entry under the monotone rule."""
        cache = ResultCache(str(tmp_path))
        key = spec().cache_key()
        cache.put(
            key,
            {"bug_id": "__echo__", "qed_definitive": False},
            fingerprint="f" * 64,
            definitive=False,
        )

        async def body(queue):
            stale = queue.submit(spec())
            assert stale.cache_hit  # the non-definitive entry still serves
            fresh = queue.submit(spec(), force=True)
            assert not fresh.cache_hit
            await wait_terminal(queue, fresh)
            assert queue.executed == 1
            entry = cache.get(key)
            assert entry.definitive and entry.record["detected_by"]

        run(with_queue(body, cache=cache))
        assert cache.upgrades == 1

    def test_terminal_jobs_are_evicted_beyond_the_cap(self):
        async def body(queue):
            jobs = [
                queue.submit(spec("__echo__", index=i)) for i in range(5)
            ]
            for job in jobs:
                await wait_terminal(queue, job)
            # Cap is 3: the two oldest terminal views are gone, the rest
            # (and the stats counters) survive.
            assert len(queue.jobs) == 3
            assert jobs[0].job_id not in queue.jobs
            assert jobs[-1].job_id in queue.jobs
            assert queue.executed == 5

        run(with_queue(body, max_tracked_jobs=3))

    def test_cache_survives_queue_restart(self, tmp_path):
        directory = str(tmp_path)

        async def first(queue):
            job = queue.submit(spec())
            await wait_terminal(queue, job)

        async def second(queue):
            job = queue.submit(spec())
            assert job.cache_hit and job.state is JobState.DONE
            assert queue.executed == 0

        run(with_queue(first, cache=ResultCache(directory)))
        run(with_queue(second, cache=ResultCache(directory)))


class TestWorkerCrash:
    """A dying worker process must FAIL the job and heal the pool."""

    def test_crash_fails_job_then_pool_recovers(self):
        async def body(queue):
            doomed = queue.submit(spec("__crash__"))
            await wait_terminal(queue, doomed, timeout=60.0)
            assert doomed.state is JobState.FAILED
            assert "Broken" in doomed.error
            # The pool was replaced: the next job runs normally.
            healthy = queue.submit(spec("__echo__", tag="after"))
            await wait_terminal(queue, healthy, timeout=60.0)
            assert healthy.state is JobState.DONE
            assert queue.failed == 1 and queue.executed == 1

        run(with_queue(body, use_processes=True))

    def test_entry_exception_fails_job_without_breaking_pool(self):
        async def body(queue):
            bad = queue.submit(spec("__boom__"))
            await wait_terminal(queue, bad)
            assert bad.state is JobState.FAILED
            assert "RuntimeError" in bad.error
            # An ordinary exception (vs. a crash) leaves the pool usable.
            assert queue._executor is not None

        run(with_queue(body, entry=_raising_entry))


def _raising_entry(spec_dict, job_id="", progress=None):
    raise RuntimeError("entry exploded")
