"""Canonical job specs, cache keys, fingerprints, config round-trips."""

import json

import pytest

from repro.bmc.engine import BMCProblem
from repro.bmc.property import SafetyProperty
from repro.dist.portfolio import PortfolioConfig
from repro.dist.scheduler import SplitConfig
from repro.eval.campaign import CampaignConfig
from repro.expr import BVConst, BVVar
from repro.indverif.crs import CRSConfig
from repro.isa.arch import SMALL_PROFILE, TINY_PROFILE, ArchParams
from repro.rtl import Circuit, elaborate
from repro.serve.keys import JobSpec, canonical_json
from repro.uarch.versions import version_by_name


class TestConfigRoundTrips:
    """Every knob dataclass must round-trip through its canonical JSON."""

    def test_arch_params(self):
        for profile in (TINY_PROFILE, SMALL_PROFILE):
            data = json.loads(json.dumps(profile.to_json_dict()))
            assert ArchParams.from_json_dict(data) == profile

    def test_crs_config(self):
        config = CRSConfig(num_programs=7, seed=42, reuse_register_bias=0.5)
        data = json.loads(json.dumps(config.to_json_dict()))
        assert CRSConfig.from_json_dict(data) == config

    def test_portfolio_config(self):
        config = PortfolioConfig(
            "probe", var_decay=0.9, default_phase=True, preprocess=True
        )
        data = json.loads(json.dumps(config.to_json_dict()))
        assert PortfolioConfig.from_json_dict(data) == config

    def test_split_config_with_nested_portfolio(self):
        config = SplitConfig(
            workers=3,
            strategy="lookahead",
            cube_conflict_budget=None,
            configs=(PortfolioConfig("a"), PortfolioConfig("b", blocked=True)),
            prefer_input_prefixes=("instr_in",),
        )
        data = json.loads(json.dumps(config.to_json_dict()))
        assert SplitConfig.from_json_dict(data) == config

    def test_campaign_config_defaults_and_nested(self):
        config = CampaignConfig(
            bug_ids=["sra_zero_fill"],
            run_industrial_flow=False,
            split=SplitConfig(workers=2),
            max_conflicts_per_query=500,
        )
        data = json.loads(json.dumps(config.to_json_dict()))
        assert CampaignConfig.from_json_dict(data) == config
        # Defaults round-trip too (the empty dict is a valid wire form).
        assert CampaignConfig.from_json_dict({}) == CampaignConfig()

    def test_bmc_problem_knobs_are_json_stable(self):
        circuit = Circuit("knobs")
        count = circuit.register("count", 4, reset=0)
        count.next = count.q + BVConst(4, 1)
        problem = BMCProblem(
            design=elaborate(circuit),
            prop=SafetyProperty("p", BVVar("count", 4).ne(BVConst(4, 9))),
            max_bound=6,
            bound_schedule=[2, 6],
            max_conflicts_per_query=100,
            split=SplitConfig(workers=2),
        )
        knobs = problem.knobs_dict()
        assert json.loads(json.dumps(knobs)) == knobs
        assert knobs["bound_schedule"] == [2, 6]
        assert knobs["split"]["workers"] == 2


class TestFingerprint:
    def test_content_not_name(self):
        # Different RTL content => different fingerprint...
        assert (
            version_by_name("A.v3").fingerprint()
            != version_by_name("A.v4").fingerprint()
        )
        # ...but identical content shares one, even across version names:
        # the final B and C versions are bug-free builds of the same
        # feature set (single ROM + SATADD), i.e. the same netlist.
        assert (
            version_by_name("B.v6").fingerprint()
            == version_by_name("C.v6").fingerprint()
        )

    def test_arch_changes_fingerprint(self):
        version = version_by_name("A.v3")
        assert version.fingerprint(TINY_PROFILE) != version.fingerprint(
            SMALL_PROFILE
        )

    def test_memoized_and_deterministic(self):
        version = version_by_name("B.v2")
        assert version.fingerprint() == version.fingerprint()


class TestJobSpec:
    CONFIG = CampaignConfig(
        run_industrial_flow=False, run_directed_tests=False
    )

    def test_from_campaign_derives_the_plan(self):
        spec = JobSpec.from_campaign("wrport_collision", self.CONFIG)
        assert spec.version == "A.v3"
        assert spec.mode == "eddiv"
        assert spec.bound == 8
        assert spec.focus_opcodes == tuple(sorted(["LDI", "MOV", "INC", "ADD"]))
        assert len(spec.fingerprint) == 64
        assert "bug_ids" not in spec.config  # selection is not semantics

    def test_round_trip_preserves_key(self):
        spec = JobSpec.from_campaign("bz_flag_misread", self.CONFIG)
        clone = JobSpec.from_dict(json.loads(json.dumps(spec.canonical_dict())))
        assert clone == spec
        assert clone.cache_key() == spec.cache_key()

    def test_semantically_identical_requests_collide(self):
        spec = JobSpec.from_campaign("wrport_collision", self.CONFIG)
        shuffled = JobSpec(
            bug_id=spec.bug_id,
            version=spec.version,
            fingerprint=spec.fingerprint,
            mode=spec.mode,
            focus_opcodes=tuple(reversed(spec.focus_opcodes)),
            bound=spec.bound,
            config=dict(reversed(list(spec.config.items()))),
        )
        assert shuffled.cache_key() == spec.cache_key()

    def test_default_spelling_collides(self):
        """An empty wire config and a fully spelled-out default config are
        the same job -- from_dict must normalize them to one key."""
        base = JobSpec.from_campaign("wrport_collision", CampaignConfig())
        explicit = base.canonical_dict()
        terse = dict(explicit)
        terse["config"] = {}
        assert (
            JobSpec.from_dict(terse).cache_key()
            == JobSpec.from_dict(explicit).cache_key()
            == base.cache_key()
        )

    def test_unknown_config_keys_still_distinguish(self):
        base = JobSpec.from_campaign("wrport_collision", CampaignConfig())
        tagged = base.canonical_dict()
        tagged["config"] = dict(tagged["config"], experiment="x1")
        assert JobSpec.from_dict(tagged).cache_key() != base.cache_key()

    def test_validate_derived_rejects_lying_specs(self):
        spec = JobSpec.from_campaign("wrport_collision", self.CONFIG)
        spec.validate_derived()  # the honest spec passes
        lying = JobSpec(
            bug_id=spec.bug_id,
            version="B.v1",
            fingerprint=spec.fingerprint,
            mode=spec.mode,
            focus_opcodes=spec.focus_opcodes,
            bound=999,
            config=spec.config,
        )
        with pytest.raises(ValueError, match="misdescribes"):
            lying.validate_derived()

    def test_key_sensitivity(self):
        base = JobSpec.from_campaign("wrport_collision", self.CONFIG)
        deeper = JobSpec.from_campaign(
            "wrport_collision",
            CampaignConfig(
                run_industrial_flow=False,
                run_directed_tests=False,
                extra_bound=1,
            ),
        )
        budgeted = JobSpec.from_campaign(
            "wrport_collision",
            CampaignConfig(
                run_industrial_flow=False,
                run_directed_tests=False,
                max_conflicts_per_query=100,
            ),
        )
        keys = {base.cache_key(), deeper.cache_key(), budgeted.cache_key()}
        assert len(keys) == 3
        assert deeper.bound == base.bound + 1

    def test_fingerprint_is_part_of_the_key(self):
        spec = JobSpec.from_campaign("wrport_collision", self.CONFIG)
        tampered = JobSpec(
            bug_id=spec.bug_id,
            version=spec.version,
            fingerprint="0" * 64,
            mode=spec.mode,
            focus_opcodes=spec.focus_opcodes,
            bound=spec.bound,
            config=spec.config,
        )
        assert tampered.cache_key() != spec.cache_key()

    def test_unresolved_spec_refuses_to_key(self):
        spec = JobSpec.from_campaign(
            "wrport_collision", self.CONFIG, resolve_fingerprint=False
        )
        with pytest.raises(ValueError, match="fingerprint"):
            spec.cache_key()
        resolved = spec.resolved()
        assert resolved.fingerprint
        assert resolved.cache_key()

    def test_campaign_config_round_trip(self):
        spec = JobSpec.from_campaign("sra_zero_fill", self.CONFIG)
        rebuilt = spec.campaign_config()
        expected = CampaignConfig.from_json_dict(self.CONFIG.to_json_dict())
        rebuilt_dict = rebuilt.to_json_dict()
        expected_dict = expected.to_json_dict()
        rebuilt_dict.pop("bug_ids"), expected_dict.pop("bug_ids")
        assert canonical_json(rebuilt_dict) == canonical_json(expected_dict)
