"""Serving-layer observability: trace store, /metrics, /trace endpoint."""

import asyncio
import json
import urllib.request

from repro.obs.metrics import parse_prometheus
from repro.serve.cache import ResultCache
from repro.serve.queue import JobQueue, JobState, _selftest_entry
from repro.serve.server import LocalServer

from serve_helpers import make_spec as spec


async def wait_terminal(queue, job, timeout=20.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not job.state.terminal and loop.time() < deadline:
        await queue.wait(job, since=job.version, timeout=deadline - loop.time())
    assert job.state.terminal, f"job stuck in {job.state} ({job.error})"
    return job


def run(coro):
    return asyncio.run(coro)


async def with_queue(body, **kwargs):
    kwargs.setdefault("entry", _selftest_entry)
    kwargs.setdefault("use_processes", False)
    queue = JobQueue(**kwargs)
    await queue.start()
    try:
        return await body(queue)
    finally:
        await queue.stop()


class TestQueueTraces:
    def test_job_gets_trace_with_queue_side_spans(self):
        async def body(queue):
            job = queue.submit(spec())
            assert job.trace_id is not None
            await wait_terminal(queue, job)
            view = queue.traces.to_json_dict(job.job_id)
            assert view["trace_id"] == job.trace_id
            names = {s["name"] for s in view["spans"]}
            assert {"queue.wait", "queue.attempt"} <= names
            attempt = next(
                s for s in view["spans"] if s["name"] == "queue.attempt"
            )
            assert attempt["attrs"]["outcome"] == "done"
            assert attempt["end"] is not None

        run(with_queue(body))

    def test_cache_hit_records_read_span(self):
        async def body(queue):
            first = queue.submit(spec())
            await wait_terminal(queue, first)
            hit = queue.submit(spec())
            assert hit.cache_hit
            view = queue.traces.to_json_dict(hit.job_id)
            (read,) = [s for s in view["spans"] if s["name"] == "cache.read"]
            assert read["attrs"]["hit"] is True

        run(with_queue(body, cache=ResultCache(None)))

    def test_queued_expiry_dumps_flight_record(self, tmp_path):
        async def body(queue):
            blocker = queue.submit(spec("__sleep:0.3__"))
            doomed = queue.submit(
                spec("__echo__", tag="expiring"), deadline_seconds=0.05
            )
            await wait_terminal(queue, blocker)
            await wait_terminal(queue, doomed)
            assert doomed.record["deadline_expired"] is True
            path = tmp_path / f"flight-{doomed.job_id}.json"
            assert path.exists()
            payload = json.loads(path.read_text())
            assert payload["reason"] == "deadline_expired"
            events = {e["name"] for e in payload["trace"]["events"]}
            assert "deadline.expired" in events
            assert queue.flight.dumps == 1

        run(with_queue(body, flight_dir=str(tmp_path)))

    def test_tracing_disabled_leaves_no_trace(self):
        from repro.obs import trace as obs_trace

        async def body(queue):
            previous = obs_trace.set_enabled(False)
            try:
                job = queue.submit(spec())
                await wait_terminal(queue, job)
                assert job.state is JobState.DONE
                assert job.trace_id is None
                assert queue.traces.to_json_dict(job.job_id) is None
            finally:
                obs_trace.set_enabled(previous)

        run(with_queue(body))


class TestQueueMetrics:
    def test_counters_and_render(self):
        async def body(queue):
            job = queue.submit(spec())
            await wait_terminal(queue, job)
            queue.submit(spec())  # warm hit
            text = queue.render_metrics()
            parsed = parse_prometheus(text)
            assert parsed["qed_jobs_submitted_total"] == 2
            assert parsed["qed_cache_hits_total"] == 1
            assert parsed["qed_cache_misses_total"] == 1
            assert parsed["qed_jobs_executed_total"] == 1
            assert parsed["qed_queue_wait_seconds_count"] == 1
            assert parsed["qed_queue_depth"] == 0
            assert parsed["qed_result_cache_puts"] == 1

        run(with_queue(body, cache=ResultCache(None)))


class TestHttpEndpoints:
    def test_metrics_and_trace_over_http(self, tmp_path):
        with LocalServer(
            cache=ResultCache(None),
            entry=_selftest_entry,
            use_processes=False,
            flight_dir=str(tmp_path),
        ) as url:
            body = json.dumps({"spec": spec().canonical_dict()}).encode()
            req = urllib.request.Request(
                url + "/jobs",
                data=body,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(req) as resp:
                job = json.load(resp)["job"]
            assert job["trace_id"]
            for _ in range(100):
                with urllib.request.urlopen(
                    f"{url}/jobs/{job['job_id']}?wait=1"
                ) as resp:
                    view = json.load(resp)["job"]
                if view["state"] in ("done", "failed", "cancelled"):
                    break
            assert view["state"] == "done"

            with urllib.request.urlopen(f"{url}/jobs/{job['job_id']}/trace") as resp:
                trace = json.load(resp)["trace"]
            names = {s["name"] for s in trace["spans"]}
            assert {"serve.lint", "queue.wait", "queue.attempt"} <= names
            assert trace["state"] == "done"

            with urllib.request.urlopen(url + "/metrics") as resp:
                assert resp.headers["Content-Type"].startswith("text/plain")
                parsed = parse_prometheus(resp.read().decode())
            assert parsed["qed_jobs_submitted_total"] == 1
            assert parsed["qed_jobs_executed_total"] == 1

            # Unknown job -> 404, JSON error body.
            try:
                urllib.request.urlopen(url + "/jobs/job-999999/trace")
                assert False, "expected 404"
            except urllib.error.HTTPError as exc:
                assert exc.code == 404
