"""Shared helpers for the serving-layer tests (not a test module)."""

from repro.serve.keys import JobSpec


def make_spec(bug_id="__echo__", **config):
    """A synthetic, fully resolved spec for the selftest entry.

    Never executed by the real :func:`repro.serve.queue.execute_job_spec`;
    the ``__echo__``/``__sleep:S__``/``__crash__`` markers drive
    :func:`repro.serve.queue._selftest_entry` instead.
    """
    return JobSpec(
        bug_id=bug_id,
        version="T.v1",
        fingerprint="f" * 64,
        mode="eddiv",
        focus_opcodes=("LDI",),
        bound=4,
        config=config,
    )
