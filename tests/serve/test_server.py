"""HTTP front end: protocol robustness, long-poll streaming, restarts.

The servers here run the deterministic selftest entry on threads, so every
test is sub-second; real solver execution is covered by
``test_campaign_equivalence.py``.
"""

import json
import socket

import pytest

from repro.serve import LocalServer, ServeClient, ServeError
from repro.serve.queue import _selftest_entry
from serve_helpers import make_spec as spec


@pytest.fixture()
def server(tmp_path):
    with LocalServer(
        cache_dir=str(tmp_path), entry=_selftest_entry, use_processes=False
    ) as url:
        yield ServeClient(url)


def _raw_exchange(client: ServeClient, payload: bytes) -> bytes:
    with socket.create_connection((client.host, client.port), timeout=5) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


class TestProtocolRobustness:
    """Hostile input gets a 4xx on its own connection; the server lives."""

    def test_garbage_request_line(self, server):
        response = _raw_exchange(server, b"THIS IS NOT HTTP\r\n\r\n")
        assert response.startswith(b"HTTP/1.1 400")
        assert server.healthy()

    def test_binary_noise(self, server):
        response = _raw_exchange(server, b"\x00\xff\xfe\x01\r\n\r\n")
        assert response.startswith(b"HTTP/1.1 400")
        assert server.healthy()

    def test_malformed_header(self, server):
        response = _raw_exchange(
            server, b"GET /stats HTTP/1.1\r\nno-colon-here\r\n\r\n"
        )
        assert response.startswith(b"HTTP/1.1 400")
        assert server.healthy()

    def test_invalid_json_body(self, server):
        body = b"{not json"
        request = (
            b"POST /jobs HTTP/1.1\r\nContent-Length: "
            + str(len(body)).encode()
            + b"\r\n\r\n"
            + body
        )
        response = _raw_exchange(server, request)
        assert response.startswith(b"HTTP/1.1 400")
        assert server.healthy()

    def test_oversized_body_rejected(self, server):
        request = b"POST /jobs HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"
        response = _raw_exchange(server, request)
        assert response.startswith(b"HTTP/1.1 400")
        assert server.healthy()

    def test_unknown_route_and_method(self, server):
        with pytest.raises(ServeError) as excinfo:
            server._request("GET", "/no/such/route")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            server._request("DELETE", "/jobs")  # jobs wants POST or GET
        assert excinfo.value.status == 405
        assert server.healthy()

    def test_non_object_spec_is_a_client_error(self, server):
        for bad_spec in ("abc", [], 7):
            with pytest.raises(ServeError) as excinfo:
                server._request("POST", "/jobs", {"spec": bad_spec})
            assert excinfo.value.status == 400
        assert server.healthy()

    def test_submit_without_spec_or_bug(self, server):
        with pytest.raises(ServeError) as excinfo:
            server._request("POST", "/jobs", {"nothing": True})
        assert excinfo.value.status == 400
        # ...and with an unknown bug id:
        with pytest.raises(ServeError) as excinfo:
            server._request("POST", "/jobs", {"bug_id": "no_such_bug"})
        assert excinfo.value.status == 400
        assert server.healthy()


class TestJobsOverHttp:
    def test_submit_poll_result_roundtrip(self, server):
        view = server.submit(spec=spec("__echo__", tag="http"))
        final = server.wait_done(view.job_id, timeout=10)
        assert final.state == "done"
        assert final.record["detected_by"] == {"eddiv": True}
        # The per-bound progress event streamed through the long-poll view.
        full = server.job(view.job_id)
        assert full.progress_total == 1
        # Content-addressed lookup serves the same record.
        cached = server.result(final.cache_key)
        assert cached is not None
        assert cached["record"]["detected_by"] == {"eddiv": True}
        assert server.result("0" * 64) is None

    def test_long_poll_streams_progress_increments(self, server):
        view = server.submit(spec=spec("__sleep:0.2__"))
        events = []
        final = server.wait_done(
            view.job_id, timeout=10, on_progress=events.append
        )
        assert final.state == "done"
        assert [e.get("verdict") for e in events] == ["unsat"]

    def test_duplicate_submissions_coalesce_over_http(self, server):
        one = server.submit(spec=spec("__sleep:0.4__"))
        two = server.submit(spec=spec("__sleep:0.4__"))
        assert two.job_id == one.job_id
        assert two.coalesced == 1
        final = server.wait_done(one.job_id, timeout=10)
        assert final.state == "done"
        stats = server.stats()["queue"]
        assert stats["executed"] == 1 and stats["coalesced"] == 1

    def test_cancel_endpoint(self, server):
        blocker = server.submit(spec=spec("__sleep:0.4__"))
        victim = server.submit(spec=spec("__echo__", tag="victim"))
        assert server.cancel(victim.job_id) is True
        view = server.job(victim.job_id)
        assert view.state == "cancelled"
        server.wait_done(blocker.job_id, timeout=10)

    def test_unknown_job_404(self, server):
        with pytest.raises(ServeError) as excinfo:
            server.job("job-999999")
        assert excinfo.value.status == 404

    def test_stats_shape(self, server):
        payload = server.stats()
        assert set(payload) == {"queue", "cache", "http"}
        from repro.eval.report import serving_statistics

        summary = serving_statistics(payload)
        assert summary["jobs_submitted"] == payload["queue"]["jobs_submitted"]
        assert 0.0 <= summary["cache_hit_rate"] <= 1.0


class TestRestartPersistence:
    def test_cache_survives_server_restart(self, tmp_path):
        directory = str(tmp_path)
        with LocalServer(
            cache_dir=directory, entry=_selftest_entry, use_processes=False
        ) as url:
            client = ServeClient(url)
            cold = client.submit(spec=spec("__echo__", tag="restart"))
            final = client.wait_done(cold.job_id, timeout=10)
            assert final.state == "done" and not final.cache_hit

        # A brand-new server process-equivalent over the same cache dir.
        with LocalServer(
            cache_dir=directory, entry=_selftest_entry, use_processes=False
        ) as url:
            client = ServeClient(url)
            warm = client.submit(spec=spec("__echo__", tag="restart"))
            assert warm.cache_hit and warm.state == "done"
            assert warm.record["served_from_cache"] is True
            assert client.stats()["queue"]["executed"] == 0
