"""End-to-end equivalence: campaign through the server == direct campaign.

The acceptance contract of the serving layer: running the detection
campaign through the HTTP service (cold cache) produces byte-identical
record content (:func:`record_comparable_dict`) to a direct
:func:`run_campaign`, and a second, warm-cache pass returns the same
records again with a 100% cache-hit rate at a fraction of the wall-clock.

The tier-1 test covers a three-bug subset with one real EDDI-V solve; the
full 16-version campaign (all fourteen bugs, industrial-flow baselines
included, plus the >=10x warm-speedup assertion) is ``slow``-marked::

    python -m pytest -m slow tests/serve
"""

import json

import pytest

from repro.eval.campaign import (
    CampaignConfig,
    record_comparable_dict,
    run_campaign,
)
from repro.serve import LocalServer, ServeClient, run_campaign_via_server


def _signature(campaign) -> str:
    """Byte-stable digest of everything deterministic in the records."""
    return json.dumps(
        [record_comparable_dict(record) for record in campaign.records],
        sort_keys=True,
    )


class TestServedCampaignFast:
    """Three-bug subset: one EDDI-V BMC job + two Single-I jobs."""

    CONFIG = CampaignConfig(
        bug_ids=["wrport_collision", "sra_zero_fill", "cmpi_carry_spec"],
        run_industrial_flow=False,
        run_directed_tests=False,
    )

    def test_cold_matches_direct_then_warm_hits_everything(self, tmp_path):
        direct = run_campaign(self.CONFIG)
        with LocalServer(cache_dir=str(tmp_path), workers=2) as url:
            client = ServeClient(url)
            cold = run_campaign_via_server(client, self.CONFIG)
            warm = run_campaign_via_server(client, self.CONFIG)
            stats = client.stats()["queue"]

        assert _signature(cold) == _signature(direct)
        assert _signature(warm) == _signature(direct)
        # Provenance: first pass solved, second pass served.
        assert [r.served_from_cache for r in cold.records] == [False] * 3
        assert [r.served_from_cache for r in warm.records] == [True] * 3
        assert all(r.cache_key for r in warm.records)
        assert stats["executed"] == 3 and stats["cache_hits"] == 3
        assert warm.wall_clock_seconds < cold.wall_clock_seconds
        # The jobs were real: the EDDI-V bug is found by the served run.
        assert cold.record_for("wrport_collision").detected_by["eddiv"]
        assert cold.record_for("wrport_collision").qed_definitive


@pytest.mark.slow
class TestServedCampaignFull:
    """All fourteen bugs across the sixteen versions, baselines included.

    The per-bound conflict budget keeps the run tractable on the
    pure-Python backend: every EDDI-V/QED-mem/Single-I verdict needs
    <= 12109 conflicts and is unaffected, while the four QED-CF bound-8
    queries (documented intractable outright since PR 1, >10^5 conflicts)
    stop at the budget and yield deterministic *non-definitive* records --
    which also exercises the cache's definitive/non-definitive admission
    path with real solver jobs.  Budgets are conflict-counted, so the whole
    campaign is deterministic and direct/served runs must agree
    byte-for-byte.
    """

    def test_full_campaign_equivalence_and_warm_speedup(self, tmp_path):
        config = CampaignConfig(max_conflicts_per_query=16000)
        direct = run_campaign(config)
        with LocalServer(cache_dir=str(tmp_path), workers=2) as url:
            client = ServeClient(url)
            cold = run_campaign_via_server(client, config)
            warm = run_campaign_via_server(client, config)
            stats = client.stats()["queue"]

        assert len(direct.records) == 14
        assert _signature(cold) == _signature(direct)
        assert _signature(warm) == _signature(direct)
        assert all(not r.served_from_cache for r in cold.records)
        assert all(r.served_from_cache for r in warm.records)
        assert stats["executed"] == len(direct.records)
        assert stats["cache_hits"] == len(direct.records)
        # Every tractable verdict survives the budget...
        detected = {
            r.bug_id for r in cold.records if r.detected_by_symbolic_qed
        }
        assert {"wrport_collision", "st_ld_stale", "ldil_after_load",
                "sra_zero_fill"} <= detected
        # ...and the budget-expired QED-CF records are honestly
        # non-definitive (cached as upgradeable, never the reverse).
        assert any(not r.qed_definitive for r in cold.records)
        assert [r.qed_definitive for r in warm.records] == [
            r.qed_definitive for r in cold.records
        ]
        # The whole point of the serving layer: the second ask of the full
        # campaign is a cache sweep, >=10x faster than solving it.
        assert warm.wall_clock_seconds * 10 <= cold.wall_clock_seconds, (
            f"warm {warm.wall_clock_seconds:.2f}s vs "
            f"cold {cold.wall_clock_seconds:.2f}s"
        )
