"""Tests for the microcontroller cores, versions and bug library."""

import random

import pytest

from repro.isa import TINY_PROFILE, encode, instructions_for_design
from repro.isa.encoding import nop_word
from repro.rtl import Simulator
from repro.uarch import ALL_VERSIONS, BUGS, bug_by_id, build_design, version_by_name
from repro.uarch.core import dmem_word_name, register_word_name
from repro.uarch.designs import golden_model_for_version
from repro.uarch.versions import buggy_versions, final_version, unique_bugs


class TestVersionInventory:
    def test_sixteen_versions(self):
        assert len(ALL_VERSIONS) == 16

    def test_fourteen_distinct_bugs(self):
        assert len(unique_bugs()) == 14
        assert unique_bugs() == {bug.bug_id for bug in BUGS}

    def test_feature_breakdown_matches_paper(self):
        by_feature = {}
        for bug in BUGS:
            by_feature.setdefault(bug.primary_feature, []).append(bug)
        assert len(by_feature["eddiv"]) == 5       # 35.7 %
        assert len(by_feature["qed_cf"]) == 4      # 28.6 %
        assert len(by_feature["qed_mem"]) == 1     # 7.1 %
        assert len(by_feature["single_i"]) == 4    # 28.6 %

    def test_exactly_one_spec_bug_missed_by_crs(self):
        missed = [bug for bug in BUGS if not bug.detected_by_crs]
        assert [bug.bug_id for bug in missed] == ["cmpi_carry_spec"]
        assert bug_by_id("cmpi_carry_spec").kind == "spec"

    def test_final_versions_carry_only_the_spec_bug(self):
        assert final_version("A").bugs == {"cmpi_carry_spec"}
        assert final_version("B").bugs == set()
        assert final_version("C").bugs == set()

    def test_design_families(self):
        assert version_by_name("A.v3").rom_interface == "dual"
        assert version_by_name("B.v2").rom_interface == "single"
        assert not version_by_name("A.v3").with_extension
        assert version_by_name("C.v2").with_extension


class TestCoreBuild:
    def test_all_versions_elaborate(self):
        for version in ALL_VERSIONS:
            design = build_design(version, arch=TINY_PROFILE)
            assert design.num_flip_flops > 80
            assert "wb_value" in design.outputs

    def test_bug_injection_changes_logic(self):
        clean = build_design(version_by_name("B.v6"), arch=TINY_PROFILE)
        buggy = build_design(version_by_name("A.v3"), arch=TINY_PROFILE)
        assert clean.next_state != buggy.next_state


def _run_random_program(design, golden, arch, rng, length=20):
    isa = instructions_for_design(True)
    words = []
    for _ in range(length):
        instr = rng.choice(isa)
        words.append(
            encode(
                arch,
                instr,
                rd=rng.randrange(arch.num_regs) if instr.writes_rd and instr.fixed_rd is None else 0,
                rs1=rng.randrange(arch.num_regs) if instr.reads_rs1 else 0,
                rs2=rng.randrange(arch.num_regs) if instr.reads_rs2 else 0,
                imm=rng.randrange(1 << arch.imm_width) if instr.uses_imm else 0,
            )
        )
    simulator = Simulator(design)
    commits = 0
    for _ in range(length + 6):
        pc = simulator.peek("pc")
        word = words[pc] if pc < len(words) else nop_word(arch)
        outputs = simulator.step({"instr_in": word, "instr_valid": 1})
        commits += outputs["commit"]
    state = golden.initial_state()
    for _ in range(commits):
        if state.halted:
            break
        word = words[state.pc] if state.pc < len(words) else nop_word(arch)
        state = golden.execute_word(state, word)
    matches = all(
        simulator.peek(register_word_name(r)) == state.regs[r]
        for r in range(arch.num_regs)
    ) and all(
        simulator.peek(dmem_word_name(d)) == state.dmem[d]
        for d in range(arch.dmem_words)
    ) and (
        simulator.peek("flag_z"),
        simulator.peek("flag_c"),
        simulator.peek("flag_n"),
    ) == (state.flag_z, state.flag_c, state.flag_n)
    return matches


class TestCoreAgainstGolden:
    @pytest.mark.parametrize("version_name", ["A.v8", "B.v6", "C.v6", "C.v5"])
    def test_clean_versions_match_specification(self, version_name):
        arch = TINY_PROFILE
        version = version_by_name(version_name)
        design = build_design(version, arch=arch)
        golden = golden_model_for_version(version, arch=arch)
        rng = random.Random(7)
        for _ in range(12):
            assert _run_random_program(design, golden, arch, rng)

    def test_buggy_version_diverges_from_clean_specification(self):
        # The seeded bugs are real architectural bugs: a long enough random
        # campaign against the *intended* (clean) specification exposes at
        # least one divergence for A.v3.
        arch = TINY_PROFILE
        version = version_by_name("A.v3")
        design = build_design(version, arch=arch)
        golden = golden_model_for_version(version, arch=arch)
        rng = random.Random(11)
        results = [
            _run_random_program(design, golden, arch, rng, length=24)
            for _ in range(30)
        ]
        assert not all(results)
