"""Tests for the ISA: catalogue, encoding, assembler and golden model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import (
    FULL_PROFILE,
    GoldenModel,
    SMALL_PROFILE,
    TINY_PROFILE,
    assemble,
    decode,
    encode,
    instruction_by_name,
    instruction_by_opcode,
    instructions_for_design,
)
from repro.isa.assembler import AssemblerError
from repro.isa.encoding import EncodingError, nop_word


class TestCatalogue:
    def test_design_a_has_more_than_50_instructions(self):
        assert len(instructions_for_design(with_extension=False)) > 50

    def test_designs_b_c_have_one_extra_instruction(self):
        base = instructions_for_design(with_extension=False)
        extended = instructions_for_design(with_extension=True)
        assert len(extended) == len(base) + 1
        assert [i.name for i in extended if i.extension] == ["SATADD"]

    def test_opcodes_are_unique(self):
        opcodes = [i.opcode for i in instructions_for_design(True)]
        assert len(opcodes) == len(set(opcodes))

    def test_lookup_by_name_and_opcode(self):
        add = instruction_by_name("add")
        assert add.name == "ADD"
        assert instruction_by_opcode(add.opcode) is add
        assert instruction_by_opcode(63) is None

    def test_fixed_destination_instruction(self):
        ldil = instruction_by_name("LDIL")
        assert ldil.fixed_rd == 0

    def test_profiles_validate(self):
        for profile in (TINY_PROFILE, SMALL_PROFILE, FULL_PROFILE):
            assert profile.num_regs % 2 == 0
            assert profile.instr_width == 18 + profile.imm_width


class TestEncoding:
    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_encode_decode_round_trip(self, data):
        arch = TINY_PROFILE
        isa = instructions_for_design(True)
        instr = data.draw(st.sampled_from(isa))
        rd = data.draw(st.integers(0, arch.num_regs - 1))
        rs1 = data.draw(st.integers(0, arch.num_regs - 1))
        rs2 = data.draw(st.integers(0, arch.num_regs - 1))
        imm = data.draw(st.integers(0, (1 << arch.imm_width) - 1))
        word = encode(arch, instr, rd=rd, rs1=rs1, rs2=rs2, imm=imm)
        enc = decode(arch, word)
        assert enc.instruction is instr
        if instr.uses_imm:
            assert enc.imm == imm
        if instr.reads_rs1:
            assert enc.rs1 == rs1

    def test_out_of_range_register_rejected(self):
        with pytest.raises(EncodingError):
            encode(TINY_PROFILE, "ADD", rd=9, rs1=0, rs2=0)

    def test_oversized_immediate_rejected(self):
        with pytest.raises(EncodingError):
            encode(TINY_PROFILE, "LDI", rd=1, imm=1 << TINY_PROFILE.imm_width)

    def test_nop_is_all_zero(self):
        assert nop_word(TINY_PROFILE) == 0

    def test_render(self):
        word = encode(TINY_PROFILE, "ADD", rd=1, rs1=2, rs2=3)
        assert decode(TINY_PROFILE, word).render() == "ADD R1, R2, R3"


class TestAssembler:
    def test_basic_program(self):
        program = assemble(
            """
            ; add two constants
            LDI R1, #3
            LDI R2, #4
            ADD R3, R1, R2
            HALT
            """,
            TINY_PROFILE,
        )
        assert len(program) == 4
        assert decode(TINY_PROFILE, program.words[2]).render() == "ADD R3, R1, R2"

    def test_labels_resolve(self):
        program = assemble(
            """
            start:
                BZ @end
                LDI R1, #1
            end:
                HALT
            """,
            TINY_PROFILE,
        )
        assert decode(TINY_PROFILE, program.words[0]).imm == 2

    def test_unknown_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("BZ @nowhere\nHALT", TINY_PROFILE)

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("ADD R1, R2", TINY_PROFILE)

    def test_store_operand_order(self):
        program = assemble("STA #2, R3\nHALT", TINY_PROFILE)
        enc = decode(TINY_PROFILE, program.words[0])
        assert enc.imm == 2
        assert enc.rs2 == 3


class TestGoldenModel:
    def test_alu_and_flags(self):
        arch = TINY_PROFILE
        golden = GoldenModel(arch)
        state = golden.initial_state()
        state = golden.execute_word(state, encode(arch, "LDI", rd=1, imm=3))
        state = golden.execute_word(state, encode(arch, "LDI", rd=2, imm=3))
        state = golden.execute_word(state, encode(arch, "SUB", rd=3, rs1=1, rs2=2))
        assert state.regs[3] == 0
        assert state.flag_z == 1
        assert state.flag_c == 1  # no borrow

    def test_branch_and_halt(self):
        arch = TINY_PROFILE
        golden = GoldenModel(arch)
        program = [
            encode(arch, "CMPI", rs1=0, imm=0),
            encode(arch, "BZ", imm=3),
            encode(arch, "LDI", rd=1, imm=5),
            encode(arch, "HALT"),
        ]
        state = golden.run_program(program)
        assert state.halted
        assert state.regs[1] == 0  # the LDI was skipped

    def test_memory_round_trip(self):
        arch = TINY_PROFILE
        golden = GoldenModel(arch)
        state = golden.initial_state()
        state = golden.execute_word(state, encode(arch, "LDI", rd=1, imm=3))
        state = golden.execute_word(state, encode(arch, "STA", rs2=1, imm=2))
        state = golden.execute_word(state, encode(arch, "LDA", rd=4, imm=2))
        assert state.dmem[2] == 3
        assert state.regs[4] == 3

    def test_extension_gating(self):
        arch = TINY_PROFILE
        with_ext = GoldenModel(arch, with_extension=True)
        without_ext = GoldenModel(arch, with_extension=False)
        word = encode(arch, "SATADD", rd=1, rs1=2, rs2=3)
        s1 = with_ext.initial_state()
        s1.regs[2], s1.regs[3] = 9, 9
        s2 = s1.copy()
        assert with_ext.execute_word(s1, word).regs[1] == arch.xlen_mask
        assert without_ext.execute_word(s2, word).regs[1] == 0  # NOP behaviour

    def test_spec_bug_configuration(self):
        arch = TINY_PROFILE
        broken = GoldenModel(arch, cmpi_carry_broken=True)
        state = broken.initial_state()
        state.regs[1] = 3
        state.flag_c = 0
        state = broken.execute_word(state, encode(arch, "CMPI", rs1=1, imm=1))
        assert state.flag_c == 0  # carry untouched under the amended spec
        intact = GoldenModel(arch)
        state2 = intact.initial_state()
        state2.regs[1] = 3
        state2 = intact.execute_word(state2, encode(arch, "CMPI", rs1=1, imm=1))
        assert state2.flag_c == 1
