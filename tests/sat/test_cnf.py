"""Tests for the CNF container and preprocessing."""

import pytest

from repro.sat import CNF, neg, sign_of, simplify_cnf, solve, var_of


class TestLiterals:
    def test_negation(self):
        assert neg(3) == -3
        assert neg(-7) == 7

    def test_var_and_sign(self):
        assert var_of(5) == 5
        assert var_of(-5) == 5
        assert sign_of(5) is True
        assert sign_of(-5) is False


class TestCNFContainer:
    def test_new_vars_are_sequential(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2
        assert cnf.new_vars(3) == [3, 4, 5]
        assert cnf.num_vars == 5

    def test_add_clause_grows_variable_space(self):
        cnf = CNF()
        cnf.add_clause([4, -9])
        assert cnf.num_vars == 9
        assert cnf.num_clauses == 1

    def test_literal_zero_rejected(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add_clause([1, 0])

    def test_copy_is_independent(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        clone = cnf.copy()
        clone.add_clause([3])
        assert cnf.num_clauses == 1
        assert clone.num_clauses == 2

    def test_extend_merges_clauses(self):
        a = CNF()
        a.add_clause([1])
        b = CNF()
        b.add_clause([2, 3])
        a.extend(b)
        assert a.num_clauses == 2
        assert a.num_vars == 3

    def test_evaluate(self):
        cnf = CNF()
        cnf.add_clause([1, -2])
        assert cnf.evaluate([False, True, True])
        assert not cnf.evaluate([False, False, True])


class TestDimacs:
    def test_round_trip(self):
        cnf = CNF()
        cnf.add_clause([1, -3])
        cnf.add_clause([2])
        text = cnf.to_dimacs()
        parsed = CNF.from_dimacs(text)
        assert parsed.num_vars == cnf.num_vars
        assert parsed.clauses == cnf.clauses

    def test_parse_with_comments(self):
        text = "c a comment\np cnf 3 2\n1 -2 0\n3 0\n"
        cnf = CNF.from_dimacs(text)
        assert cnf.num_vars == 3
        assert cnf.clauses == [[1, -2], [3]]

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError):
            CNF.from_dimacs("1 2 0\n")


class TestSimplify:
    def test_unit_propagation_fixes_variables(self):
        cnf = CNF()
        cnf.add_clause([1])
        cnf.add_clause([-1, 2])
        cnf.add_clause([-2, 3, 4])
        result = simplify_cnf(cnf)
        assert not result.unsatisfiable
        assert result.fixed[1] is True
        assert result.fixed[2] is True

    def test_conflict_detected(self):
        cnf = CNF()
        cnf.add_clause([1])
        cnf.add_clause([-1])
        assert simplify_cnf(cnf).unsatisfiable

    def test_simplified_equisatisfiable(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        cnf.add_clause([-1, 2])
        cnf.add_clause([3, -2])
        simplified = simplify_cnf(cnf)
        assert solve(cnf).satisfiable == solve(simplified.cnf).satisfiable

    def test_extend_model_overlays_fixed_values(self):
        cnf = CNF()
        cnf.add_clause([1])
        cnf.add_clause([2, 3])
        result = simplify_cnf(cnf)
        model = solve(result.cnf).model or [False] * (cnf.num_vars + 1)
        extended = result.extend_model(model)
        assert extended[1] is True
