"""Tests for the CDCL SAT solver."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import CNF, solve
from repro.sat.solver import CDCLSolver, SolverStatus, _luby


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            _luby(0)


class TestBasicSolving:
    def test_empty_formula_is_sat(self):
        assert solve(CNF()).satisfiable

    def test_unit_clauses(self):
        cnf = CNF()
        cnf.add_unit(1)
        cnf.add_unit(-2)
        result = solve(cnf)
        assert result.satisfiable
        assert result.value(1) is True
        assert result.value(2) is False

    def test_contradictory_units(self):
        cnf = CNF()
        cnf.add_unit(1)
        cnf.add_unit(-1)
        assert not solve(cnf).satisfiable

    def test_empty_clause_is_unsat(self):
        cnf = CNF(2)
        cnf.add_clause([])
        assert not solve(cnf).satisfiable

    def test_simple_unsat_chain(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        cnf.add_clause([-1, 2])
        cnf.add_clause([-2, 3])
        cnf.add_clause([-3])
        assert not solve(cnf).satisfiable

    def test_simple_sat_model_satisfies_formula(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        cnf.add_clause([-1, -2])
        cnf.add_clause([1, -2])
        result = solve(cnf)
        assert result.satisfiable
        assert cnf.evaluate(result.model)

    def test_assumptions_force_branch(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        result = solve(cnf, assumptions=[-1])
        assert result.satisfiable
        assert result.value(2) is True

    def test_conflicting_assumptions_unsat(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        cnf.add_clause([-2, 1])
        assert not solve(cnf, assumptions=[-1]).satisfiable

    def test_value_raises_on_unsat(self):
        cnf = CNF()
        cnf.add_unit(1)
        cnf.add_unit(-1)
        result = solve(cnf)
        with pytest.raises(ValueError):
            result.value(1)


class TestPigeonhole:
    def _php(self, holes: int) -> CNF:
        cnf = CNF()
        var = {}
        for pigeon in range(holes + 1):
            for hole in range(holes):
                var[(pigeon, hole)] = cnf.new_var()
        for pigeon in range(holes + 1):
            cnf.add_clause([var[(pigeon, hole)] for hole in range(holes)])
        for hole in range(holes):
            for p1 in range(holes + 1):
                for p2 in range(p1 + 1, holes + 1):
                    cnf.add_clause([-var[(p1, hole)], -var[(p2, hole)]])
        return cnf

    def test_php_4_is_unsat(self):
        assert not solve(self._php(4)).satisfiable

    def test_php_5_is_unsat_with_learning(self):
        result = solve(self._php(5))
        assert not result.satisfiable
        assert result.stats.conflicts > 0


def _php_cnf(holes: int) -> CNF:
    cnf = CNF()
    var = {}
    for pigeon in range(holes + 1):
        for hole in range(holes):
            var[(pigeon, hole)] = cnf.new_var()
    for pigeon in range(holes + 1):
        cnf.add_clause([var[(pigeon, hole)] for hole in range(holes)])
    for hole in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                cnf.add_clause([-var[(p1, hole)], -var[(p2, hole)]])
    return cnf


class TestConflictBudget:
    def test_budget_returns_unknown(self):
        solver = CDCLSolver(_php_cnf(7))
        result = solver.solve(max_conflicts=5)
        assert result.unknown
        assert result.status is SolverStatus.UNKNOWN
        # UNKNOWN is not a refutation: the legacy boolean is False, but the
        # tri-state view must not report UNSAT.
        assert not result.satisfiable
        assert not result.is_unsat
        assert not result.is_sat

    def test_budget_is_per_call_not_cumulative(self):
        # A second call with the same budget must get a full fresh budget;
        # with the old cumulative comparison it would give up on its very
        # first conflict.
        solver = CDCLSolver(_php_cnf(6))
        first = solver.solve(max_conflicts=5)
        assert first.unknown
        second = solver.solve(max_conflicts=5)
        assert second.unknown
        assert second.stats.conflicts > 1
        assert solver.stats.conflicts >= first.stats.conflicts + second.stats.conflicts

    def test_verdict_reachable_after_budget_expiry(self):
        solver = CDCLSolver(_php_cnf(4))
        assert solver.solve(max_conflicts=1).unknown
        final = solver.solve()
        assert final.is_unsat


class TestIncrementalReuse:
    def test_resolve_with_contradictory_assumptions(self):
        # Regression: the first call's assumption decisions used to stay on
        # the trail, so the second call could return a stale model instead
        # of noticing the contradiction.
        cnf = CNF()
        cnf.add_clause([1, 2])
        solver = CDCLSolver(cnf)
        first = solver.solve(assumptions=[1, 2])
        assert first.is_sat
        assert first.value(1) and first.value(2)
        second = solver.solve(assumptions=[-1, -2])
        assert second.is_unsat
        third = solver.solve(assumptions=[-1])
        assert third.is_sat
        assert not third.value(1) and third.value(2)

    def test_unsat_under_assumptions_is_not_permanent(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        cnf.add_clause([-2, 3])
        solver = CDCLSolver(cnf)
        assert solver.solve(assumptions=[-1, -2]).is_unsat
        after = solver.solve()
        assert after.is_sat
        assert cnf.evaluate(after.model)

    def test_back_to_back_calls_return_consistent_models(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        cnf.add_clause([-1, -2])
        cnf.add_clause([1, -2])
        solver = CDCLSolver(cnf)
        for _ in range(3):
            result = solver.solve()
            assert result.is_sat
            assert cnf.evaluate(result.model)

    def test_add_clause_between_solves_blocks_model(self):
        cnf = CNF(3)
        cnf.add_clause([1, 2, 3])
        solver = CDCLSolver(cnf)
        seen = set()
        # Enumerate all models by blocking each one; 7 assignments satisfy
        # the single clause, the 8th call must report UNSAT.
        for _ in range(7):
            result = solver.solve()
            assert result.is_sat
            model = tuple(result.model[1:4])
            assert model not in seen
            seen.add(model)
            solver.add_clause(
                [-(v) if result.model[v] else v for v in range(1, 4)]
            )
        assert solver.solve().is_unsat
        assert len(seen) == 7

    def test_added_unit_propagates_immediately(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        solver = CDCLSolver(cnf)
        assert solver.solve().is_sat
        solver.add_clause([-1])
        result = solver.solve()
        assert result.is_sat
        assert not result.value(1) and result.value(2)
        solver.add_clause([-2])
        assert solver.solve().is_unsat

    def test_add_clause_with_new_variables_grows_solver(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        solver = CDCLSolver(cnf)
        assert solver.solve().is_sat
        solver.add_clause([3, 4])
        solver.add_clause([-3])
        result = solver.solve()
        assert result.is_sat
        assert solver.num_vars == 4
        assert result.value(4)

    def test_learned_clauses_survive_between_calls(self):
        solver = CDCLSolver(_php_cnf(4))
        first = solver.solve()
        assert first.is_unsat
        # A second identical query is answered from the poisoned database
        # (level-0 conflict) without redoing the search.
        second = solver.solve()
        assert second.is_unsat
        assert second.stats.conflicts == 0

    def test_per_call_stats_are_deltas(self):
        solver = CDCLSolver(_php_cnf(5))
        first = solver.solve(max_conflicts=20)
        second = solver.solve(max_conflicts=20)
        total = solver.stats.conflicts
        assert first.stats.conflicts <= 21
        assert second.stats.conflicts <= 21
        assert total == first.stats.conflicts + second.stats.conflicts


def _brute_force(cnf: CNF) -> bool:
    for assignment in range(1 << cnf.num_vars):
        values = [False] + [
            bool((assignment >> i) & 1) for i in range(cnf.num_vars)
        ]
        if cnf.evaluate(values):
            return True
    return False


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_incremental_reuse_matches_fresh_solves(data):
    """One long-lived solver (clauses added and assumptions changed between
    calls) must agree with a fresh solver on the same formula every time."""
    num_vars = data.draw(st.integers(min_value=3, max_value=6))
    rng = random.Random(data.draw(st.integers(min_value=0, max_value=10_000)))
    cnf = CNF(num_vars)
    incremental = CDCLSolver(cnf)
    for _ in range(3):
        for _ in range(rng.randint(1, 6)):
            clause = [
                rng.choice([1, -1]) * rng.randint(1, num_vars)
                for _ in range(rng.randint(1, 3))
            ]
            cnf.add_clause(clause)
            incremental.add_clause(clause)
        assumptions = [
            rng.choice([1, -1]) * v
            for v in rng.sample(range(1, num_vars + 1), rng.randint(0, 2))
        ]
        reused = incremental.solve(assumptions)
        fresh = solve(cnf, assumptions)
        assert reused.is_sat == fresh.is_sat
        assert reused.is_unsat == fresh.is_unsat
        if reused.is_sat:
            assert cnf.evaluate(reused.model)
            for assumption in assumptions:
                assert reused.model[abs(assumption)] == (assumption > 0)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_random_3sat_matches_brute_force(data):
    num_vars = data.draw(st.integers(min_value=3, max_value=8))
    num_clauses = data.draw(st.integers(min_value=1, max_value=30))
    rng = random.Random(data.draw(st.integers(min_value=0, max_value=10_000)))
    cnf = CNF(num_vars)
    for _ in range(num_clauses):
        clause = [
            rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(3)
        ]
        cnf.add_clause(clause)
    result = solve(cnf)
    assert result.satisfiable == _brute_force(cnf)
    if result.satisfiable:
        assert cnf.evaluate(result.model)
