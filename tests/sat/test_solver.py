"""Tests for the CDCL SAT solver."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import CNF, solve
from repro.sat.solver import CDCLSolver, _luby


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            _luby(0)


class TestBasicSolving:
    def test_empty_formula_is_sat(self):
        assert solve(CNF()).satisfiable

    def test_unit_clauses(self):
        cnf = CNF()
        cnf.add_unit(1)
        cnf.add_unit(-2)
        result = solve(cnf)
        assert result.satisfiable
        assert result.value(1) is True
        assert result.value(2) is False

    def test_contradictory_units(self):
        cnf = CNF()
        cnf.add_unit(1)
        cnf.add_unit(-1)
        assert not solve(cnf).satisfiable

    def test_empty_clause_is_unsat(self):
        cnf = CNF(2)
        cnf.add_clause([])
        assert not solve(cnf).satisfiable

    def test_simple_unsat_chain(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        cnf.add_clause([-1, 2])
        cnf.add_clause([-2, 3])
        cnf.add_clause([-3])
        assert not solve(cnf).satisfiable

    def test_simple_sat_model_satisfies_formula(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        cnf.add_clause([-1, -2])
        cnf.add_clause([1, -2])
        result = solve(cnf)
        assert result.satisfiable
        assert cnf.evaluate(result.model)

    def test_assumptions_force_branch(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        result = solve(cnf, assumptions=[-1])
        assert result.satisfiable
        assert result.value(2) is True

    def test_conflicting_assumptions_unsat(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        cnf.add_clause([-2, 1])
        assert not solve(cnf, assumptions=[-1]).satisfiable

    def test_value_raises_on_unsat(self):
        cnf = CNF()
        cnf.add_unit(1)
        cnf.add_unit(-1)
        result = solve(cnf)
        with pytest.raises(ValueError):
            result.value(1)


class TestPigeonhole:
    def _php(self, holes: int) -> CNF:
        cnf = CNF()
        var = {}
        for pigeon in range(holes + 1):
            for hole in range(holes):
                var[(pigeon, hole)] = cnf.new_var()
        for pigeon in range(holes + 1):
            cnf.add_clause([var[(pigeon, hole)] for hole in range(holes)])
        for hole in range(holes):
            for p1 in range(holes + 1):
                for p2 in range(p1 + 1, holes + 1):
                    cnf.add_clause([-var[(p1, hole)], -var[(p2, hole)]])
        return cnf

    def test_php_4_is_unsat(self):
        assert not solve(self._php(4)).satisfiable

    def test_php_5_is_unsat_with_learning(self):
        result = solve(self._php(5))
        assert not result.satisfiable
        assert result.stats.conflicts > 0


class TestConflictBudget:
    def test_budget_returns_unknown(self):
        cnf = CNF()
        var = {}
        holes = 7
        for pigeon in range(holes + 1):
            for hole in range(holes):
                var[(pigeon, hole)] = cnf.new_var()
        for pigeon in range(holes + 1):
            cnf.add_clause([var[(pigeon, hole)] for hole in range(holes)])
        for hole in range(holes):
            for p1 in range(holes + 1):
                for p2 in range(p1 + 1, holes + 1):
                    cnf.add_clause([-var[(p1, hole)], -var[(p2, hole)]])
        solver = CDCLSolver(cnf)
        result = solver.solve(max_conflicts=5)
        assert result.unknown


def _brute_force(cnf: CNF) -> bool:
    for assignment in range(1 << cnf.num_vars):
        values = [False] + [
            bool((assignment >> i) & 1) for i in range(cnf.num_vars)
        ]
        if cnf.evaluate(values):
            return True
    return False


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_random_3sat_matches_brute_force(data):
    num_vars = data.draw(st.integers(min_value=3, max_value=8))
    num_clauses = data.draw(st.integers(min_value=1, max_value=30))
    rng = random.Random(data.draw(st.integers(min_value=0, max_value=10_000)))
    cnf = CNF(num_vars)
    for _ in range(num_clauses):
        clause = [
            rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(3)
        ]
        cnf.add_clause(clause)
    result = solve(cnf)
    assert result.satisfiable == _brute_force(cnf)
    if result.satisfiable:
        assert cnf.evaluate(result.model)
