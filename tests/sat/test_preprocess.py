"""Tests for the SatELite-style CNF preprocessor."""

import random

import pytest

from repro.sat.cnf import CNF
from repro.sat.preprocess import extend_model, preprocess
from repro.sat.solver import CDCLSolver


def _solve(clauses, num_vars):
    cnf = CNF(num_vars)
    for clause in clauses:
        cnf.add_clause(clause)
    return CDCLSolver(cnf).solve()


def _max_var(clauses):
    return max((abs(l) for clause in clauses for l in clause), default=0)


class TestSubsumption:
    def test_subsumed_clause_removed(self):
        result = preprocess(
            [[1, 2], [1, 2, 3]], frozen={1, 2, 3}, enable_probing=False
        )
        assert result.stats.clauses_subsumed == 1
        assert [1, 2] in result.clauses
        assert [1, 2, 3] not in result.clauses

    def test_self_subsuming_resolution_strengthens(self):
        # (1 2) and (-1 2 3): resolving on 1 gives (2 3) which subsumes
        # the second clause, so literal -1 is removed from it.
        result = preprocess(
            [[1, 2], [-1, 2, 3]], frozen={1, 2, 3}, enable_probing=False
        )
        assert result.stats.literals_strengthened == 1
        assert [2, 3] in result.clauses

    def test_duplicate_and_tautological_clauses_cleaned(self):
        result = preprocess(
            [[1, -1, 2], [1, 2], [2, 1]], frozen={1, 2}, enable_probing=False
        )
        non_unit = [c for c in result.clauses if len(c) > 1]
        assert len(non_unit) == 1


class TestVariableElimination:
    def test_tseitin_auxiliary_disappears(self):
        # Variable 3 is a pure Tseitin definition 3 <-> (1 & 2); nothing
        # else mentions it, so BVE removes it without growth.
        clauses = [[-3, 1], [-3, 2], [3, -1, -2]]
        result = preprocess(clauses, frozen={1, 2}, enable_probing=False)
        assert result.stats.variables_eliminated == 1
        assert all(3 not in map(abs, clause) for clause in result.clauses)

    def test_frozen_variables_never_eliminated(self):
        clauses = [[-3, 1], [-3, 2], [3, -1, -2], [-1, 2], [1, -2]]
        for frozen in ({1, 2, 3}, {3}):
            result = preprocess(clauses, frozen=frozen, enable_probing=False)
            eliminated = {variable for variable, _ in result.eliminated}
            assert eliminated.isdisjoint(frozen)

    def test_elimination_preserves_satisfiability(self):
        clauses = [[-3, 1], [-3, 2], [3, -1, -2], [3]]
        result = preprocess(clauses, frozen=set(), enable_probing=False)
        verdict = _solve(result.clauses, _max_var(clauses))
        assert verdict.is_sat
        model = extend_model(verdict.model, result.eliminated)
        for clause in clauses:
            assert any(model[abs(l)] == (l > 0) for l in clause)


class TestProbing:
    def test_failed_literal_becomes_unit(self):
        # Assuming 1 propagates 2 (via -1 2 ... binary chains) into a
        # conflict, so -1 must hold at top level.
        clauses = [[-1, 2], [-1, 3], [-2, -3, 4], [-4, -1], [1, 5], [1, -5, 6]]
        result = preprocess(
            clauses,
            frozen={1, 2, 3, 4, 5, 6},
            enable_elimination=False,
            enable_subsumption=False,
        )
        assert result.stats.failed_literals >= 1
        assert [-1] in result.clauses


class TestUnsatDetection:
    def test_contradictory_units(self):
        result = preprocess([[1], [-1]], frozen={1})
        assert result.unsat
        assert [] in result.clauses

    def test_unsat_core_via_resolution(self):
        clauses = [[1, 2], [1, -2], [-1, 2], [-1, -2]]
        result = preprocess(clauses, frozen=set())
        verdict = _solve(result.clauses, 2)
        assert verdict.is_unsat


class TestRandomEquivalence:
    """Preprocessing must preserve satisfiability on random formulas.

    For every random CNF the original and the preprocessed formula are
    solved independently; the verdicts must agree, and on SAT the reduced
    model extended over the eliminated variables must satisfy every
    original clause.
    """

    @pytest.mark.parametrize("seed", range(40))
    def test_preprocess_preserves_satisfiability(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(4, 10)
        num_clauses = rng.randint(3, 4 * num_vars)
        clauses = []
        for _ in range(num_clauses):
            width = rng.randint(1, min(4, num_vars))
            variables = rng.sample(range(1, num_vars + 1), width)
            clauses.append(
                [v if rng.random() < 0.5 else -v for v in variables]
            )
        frozen = set(rng.sample(range(1, num_vars + 1), rng.randint(0, 3)))

        original = _solve(clauses, num_vars)
        result = preprocess(clauses, frozen=frozen)
        eliminated = {variable for variable, _ in result.eliminated}
        assert eliminated.isdisjoint(frozen)
        reduced = _solve(result.clauses, num_vars)
        assert original.is_sat == reduced.is_sat
        assert original.is_unsat == reduced.is_unsat
        if reduced.is_sat:
            model = extend_model(reduced.model, result.eliminated)
            for clause in clauses:
                assert any(model[abs(l)] == (l > 0) for l in clause), (
                    f"extended model falsifies {clause}"
                )


class TestStatsPlumbing:
    def test_stats_merge_accumulates(self):
        first = preprocess([[1, 2], [1, 2, 3]], frozen={1, 2, 3}).stats
        second = preprocess([[-4, 5]], frozen={4, 5}).stats
        total_in = first.clauses_in
        first.merge(second)
        assert first.clauses_in == total_in + second.clauses_in
        assert first.rounds >= second.rounds


class TestFrozenCutoff:
    def test_variables_at_or_below_cutoff_survive(self):
        # Var 3 is an eliminable Tseitin auxiliary, but the cutoff freezes
        # it (the engine uses the cutoff for solver-known variables).
        clauses = [[-3, 1], [-3, 2], [3, -1, -2]]
        kept = preprocess(clauses, frozen_cutoff=3, enable_probing=False)
        assert kept.stats.variables_eliminated == 0
        gone = preprocess(clauses, frozen_cutoff=2, enable_probing=False)
        assert gone.stats.variables_eliminated == 1
        assert {variable for variable, _ in gone.eliminated} == {3}


class TestBlockedClauseElimination:
    """The optional BCE pass: off by default, sat-equivalent when on."""

    def test_off_by_default(self):
        clauses = [[1, 2], [-1, -2, 3], [3, 4]]
        result = preprocess(
            clauses,
            frozen={1, 2, 3, 4},
            enable_subsumption=False,
            enable_elimination=False,
            enable_probing=False,
        )
        assert result.stats.clauses_blocked == 0
        assert result.blocked == []

    def test_textbook_blocked_clause_removed(self):
        # (1 2) is blocked on 1: the only clause containing -1 also
        # contains -2, so the resolvent is tautological.
        clauses = [[1, 2], [-1, -2, 3], [3, 4]]
        result = preprocess(
            clauses,
            enable_subsumption=False,
            enable_elimination=False,
            enable_probing=False,
            enable_blocked=True,
        )
        assert result.stats.clauses_blocked >= 1
        assert any(clause == [1, 2] for _, clause in result.blocked)

    def test_frozen_literal_never_blocks(self):
        clauses = [[1, 2], [-1, -2, 3], [3, 4]]
        result = preprocess(
            clauses,
            frozen={1, 2, 3, 4},
            enable_subsumption=False,
            enable_elimination=False,
            enable_probing=False,
            enable_blocked=True,
        )
        assert result.stats.clauses_blocked == 0

    def test_pure_literal_is_degenerate_blocked_case(self):
        # Variable 4 occurs only positively: no resolvents at all, so the
        # clause containing it is blocked.
        clauses = [[4, 1], [1, -2], [2, -1]]
        result = preprocess(
            clauses,
            frozen={1, 2},
            enable_subsumption=False,
            enable_elimination=False,
            enable_probing=False,
            enable_blocked=True,
        )
        assert any(abs(lit) == 4 for lit, _ in result.blocked)

    @pytest.mark.parametrize("seed", range(40))
    def test_bce_preserves_satisfiability(self, seed):
        """Sat-equivalence: same verdict, and extended models satisfy the
        original clauses (the blocked-clause repair included)."""
        rng = random.Random(7000 + seed)
        num_vars = rng.randint(4, 14)
        clauses = []
        for _ in range(rng.randint(6, 40)):
            width = rng.randint(1, 3)
            clauses.append(
                [
                    rng.choice([1, -1]) * rng.randint(1, num_vars)
                    for _ in range(width)
                ]
            )
        reference = _solve([list(c) for c in clauses], num_vars)
        # BCE alone (the other passes would hide it on formulas this small).
        result = preprocess(
            [list(c) for c in clauses],
            enable_subsumption=False,
            enable_elimination=False,
            enable_probing=False,
            enable_blocked=True,
        )
        if result.unsat:
            assert reference.is_unsat
            return
        reduced = _solve(result.clauses, num_vars)
        assert reduced.is_sat == reference.is_sat
        if reduced.is_sat:
            model = result.extend_model(reduced.model)
            for clause in clauses:
                assert any((lit > 0) == model[abs(lit)] for lit in clause), (
                    f"clause {clause} unsatisfied after blocked-clause repair"
                )


class TestLegacySimplifyRetired:
    def test_simplify_module_is_gone(self):
        # The deprecation shim of the old ``repro.sat.simplify`` module was
        # removed after one PR cycle; ``simplify_cnf`` lives in (and is only
        # importable from) ``repro.sat.preprocess`` / the package root.
        import pytest

        with pytest.raises(ModuleNotFoundError):
            import repro.sat.simplify  # noqa: F401

    def test_simplify_cnf_exported_from_preprocess_and_package(self):
        import repro.sat
        from repro.sat.preprocess import SimplificationResult, simplify_cnf

        assert repro.sat.simplify_cnf is simplify_cnf
        assert repro.sat.SimplificationResult is SimplificationResult
