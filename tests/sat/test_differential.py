"""Differential testing of the flat-arena CDCL core.

Two oracles keep the solver honest after the arena rewrite:

* a brute-force truth-table enumerator over seeded random CNFs (<= 16
  variables): the CDCL verdict must match exhaustive enumeration exactly,
  and every SAT model must actually satisfy every clause;
* the solver's own clause-export buffer: exported learned clauses must be
  implied by the clause database even when an in-place database compaction
  (:meth:`CDCLSolver._reduce_learned`) deletes or relocates the arena
  clause between learning and draining -- the regression guard for the
  copy-out-at-learn-time contract.
"""

import random

import pytest

from repro.sat.cnf import CNF
from repro.sat.solver import CDCLSolver, SolverStatus


def _random_cnf(seed: int) -> CNF:
    """A seeded random CNF with 3..16 variables (clause ratio ~4.2)."""
    rng = random.Random(seed)
    num_vars = 3 + seed % 14  # 3..16 across the seed sweep
    num_clauses = max(2, int(4.2 * num_vars * rng.uniform(0.6, 1.2)))
    cnf = CNF(num_vars)
    for _ in range(num_clauses):
        width = rng.choice((1, 2, 2, 3, 3, 3, 4))
        variables = rng.sample(range(1, num_vars + 1), min(width, num_vars))
        cnf.add_clause(
            [v if rng.random() < 0.5 else -v for v in variables]
        )
    return cnf


def _brute_force_satisfiable(cnf: CNF) -> bool:
    """Exhaustive truth-table enumeration (the ground-truth oracle)."""
    num_vars = cnf.num_vars
    clauses = cnf.clauses
    for bits in range(1 << num_vars):
        ok = True
        for clause in clauses:
            satisfied = False
            for lit in clause:
                var = lit if lit > 0 else -lit
                value = (bits >> (var - 1)) & 1
                if (lit > 0) == bool(value):
                    satisfied = True
                    break
            if not satisfied:
                ok = False
                break
        if ok:
            return True
    return False


def _model_satisfies(cnf: CNF, model) -> bool:
    return all(
        any((lit > 0) == model[lit if lit > 0 else -lit] for lit in clause)
        for clause in cnf.clauses
    )


class TestTruthTableDifferential:
    @pytest.mark.parametrize("seed", range(72))
    def test_verdict_and_model_match_enumeration(self, seed):
        cnf = _random_cnf(seed)
        expected = _brute_force_satisfiable(cnf)
        result = CDCLSolver(cnf).solve()
        assert result.status is not SolverStatus.UNKNOWN
        assert result.is_sat == expected, (
            f"seed {seed}: solver said {result.status}, enumeration said "
            f"{'SAT' if expected else 'UNSAT'}"
        )
        if result.is_sat:
            assert result.model is not None
            assert _model_satisfies(cnf, result.model), (
                f"seed {seed}: SAT model does not satisfy the formula"
            )

    @pytest.mark.parametrize("seed", range(0, 72, 6))
    def test_incremental_growth_matches_enumeration(self, seed):
        # Feed the same formula in two halves through the incremental
        # add_clause path; the verdict must still match enumeration.
        cnf = _random_cnf(seed)
        clauses = cnf.clauses
        half = len(clauses) // 2
        prefix = CNF(cnf.num_vars)
        prefix.add_clauses(clauses[:half])
        solver = CDCLSolver(prefix)
        solver.solve()
        solver.add_clauses(clauses[half:])
        result = solver.solve()
        assert result.is_sat == _brute_force_satisfiable(cnf)
        if result.is_sat:
            assert _model_satisfies(cnf, result.model)


class TestExportSurvivesCompaction:
    def test_exported_clauses_remain_valid_after_reduction(self):
        # A hard-ish random 3-CNF makes the solver learn enough clauses to
        # cross an artificially tiny reduction threshold several times, so
        # database compactions interleave with clause learning while the
        # export buffer is filling.  Every drained clause must be implied
        # by the original formula -- a dangling arena offset (the bug this
        # guards against) would surface as a garbage clause here.
        rng = random.Random(1234)
        num_vars = 60
        cnf = CNF(num_vars)
        for _ in range(int(4.4 * num_vars)):
            variables = rng.sample(range(1, num_vars + 1), 3)
            cnf.add_clause(
                [v if rng.random() < 0.5 else -v for v in variables]
            )
        solver = CDCLSolver(cnf)
        solver.enable_clause_export(max_lbd=12, max_length=40)
        solver._reduce_threshold = 25  # force frequent compactions
        result = solver.solve(max_conflicts=4000)
        assert solver.stats.learned_clauses > 50, (
            "instance too easy to exercise reduction -- adjust the seed"
        )
        # At least one reduction must actually have removed clauses.
        assert solver.num_learned_clauses < solver.stats.learned_clauses
        exported = solver.drain_exported()
        assert exported, "no clauses were exported"
        for clause in exported:
            assert clause, "empty exported clause"
            for lit in clause:
                var = lit if lit > 0 else -lit
                assert 1 <= var <= num_vars, (
                    f"exported clause {clause} references unknown "
                    f"variable {var}"
                )
        # Implication check on a sample: formula AND NOT(clause) is UNSAT
        # for every clause implied by the formula.
        for clause in exported[:40]:
            checker = CDCLSolver(cnf)
            refute = checker.solve(
                assumptions=[-lit for lit in clause]
            )
            assert refute.is_unsat, (
                f"exported clause {clause} is not implied by the clause "
                f"database (solver verdict {refute.status}; original "
                f"verdict {result.status})"
            )
        # Draining clears the buffer.
        assert solver.drain_exported() == []
