"""Smoke tests for the ``examples/`` scripts.

The examples are the documented entry points of the reproduction; this keeps
them runnable under the tier-1 profile.  Only the quickstart is executed --
the other examples run multi-minute campaigns and are exercised indirectly
through the modules they call.
"""

import os
import runpy

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)


def test_quickstart_finds_the_bug(capsys):
    path = os.path.join(EXAMPLES_DIR, "quickstart.py")
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    assert "bug found" in output
    assert "design under verification" in output


def test_serve_quickstart_hits_the_cache(capsys):
    path = os.path.join(EXAMPLES_DIR, "serve_quickstart.py")
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    assert "verification service up" in output
    assert "bug detected by ['single_i']" in output
    assert "cache hit" in output
    assert "1 executed, 1 cache hits" in output


def test_examples_importable_without_side_effects():
    """Importing (not running) an example must not start a campaign."""
    for name in (
        "quickstart.py",
        "control_flow_bug_hunt.py",
        "distributed_proof.py",
        "regression_campaign.py",
        "serve_quickstart.py",
        "spec_bug_and_single_i.py",
    ):
        path = os.path.join(EXAMPLES_DIR, name)
        if not os.path.exists(path):  # pragma: no cover - repo layout guard
            pytest.skip(f"{name} missing")
        runpy.run_path(path, run_name="example_import_smoke")
