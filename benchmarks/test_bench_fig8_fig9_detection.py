"""Fig. 8 and Fig. 9 -- bugs detected by Symbolic QED vs the industrial flow."""

from repro.eval.report import detection_breakdown


def test_bench_fig8_symbolic_qed_vs_industrial(benchmark, campaign_result):
    breakdown = benchmark(detection_breakdown, campaign_result)
    print("\nFig. 8 -- bugs detected by Symbolic QED vs the industrial flow")
    print(f"  bugs in campaign:              {breakdown['total_bugs']}")
    print(f"  detected by Symbolic QED:      {breakdown['symbolic_qed_detected']}")
    print(f"  detected by industrial flow:   {breakdown['industrial_flow_detected']}")
    print(
        "  Symbolic QED relative to flow:  "
        f"{breakdown['qed_vs_industrial_percent']:.1f}% "
        f"(+{breakdown['qed_unique_percent']:.1f}% unique: {breakdown['qed_unique_bugs']})"
    )
    # Paper shape: Symbolic QED detects every industrial-flow bug plus a
    # specification bug the flow never recorded.
    assert breakdown["symbolic_qed_detected"] == breakdown["total_bugs"]
    assert breakdown["industrial_flow_detected"] == breakdown["total_bugs"] - 1
    assert breakdown["qed_unique_bugs"] == ["cmpi_carry_spec"]
    assert breakdown["qed_vs_industrial_percent"] > 100.0


def test_bench_fig9_industrial_flow_breakdown(benchmark, campaign_result):
    breakdown = benchmark(detection_breakdown, campaign_result)
    print("\nFig. 9 -- bugs detected by the industrial verification flow")
    print(f"  CRS:    {breakdown['crs_detected']}")
    print(f"  OCS-FV: {breakdown['ocsfv_detected']}")
    print(f"  DST:    {breakdown['dst_detected']} (bugs found by DST were never recorded)")
    # Paper shape: every recorded bug was detected only by CRS.
    assert breakdown["crs_detected"] == breakdown["industrial_flow_detected"]
    assert breakdown["ocsfv_detected"] == 0
    assert breakdown["dst_detected"] == 0
