"""Fig. 10 -- bugs detected by the individual Symbolic QED features."""

from repro.eval.report import detection_breakdown
from repro.uarch.bugs import bug_by_id


def test_bench_fig10_feature_breakdown(benchmark, campaign_result):
    breakdown = benchmark(detection_breakdown, campaign_result)
    counts = breakdown["feature_breakdown_counts"]
    percent = breakdown["feature_breakdown_percent"]
    print("\nFig. 10 -- bugs detected by Symbolic QED feature")
    for feature in ("eddiv", "qed_cf", "qed_mem", "single_i"):
        print(f"  {feature:10s} {counts[feature]:2d}  ({percent[feature]:.1f}%)")

    # Shape check: every campaign bug is attributed to the feature the bug
    # library predicts (the paper's 35.7 / 28.6 / 7.1 / 28.6 split over the
    # full library).
    for record in campaign_result.records:
        expected = bug_by_id(record.bug_id).primary_feature
        assert record.attributed_feature == expected, record.bug_id
    assert counts["eddiv"] >= 1
    assert counts["qed_cf"] >= 1
    assert counts["qed_mem"] >= 1
    assert counts["single_i"] >= 1
