"""Table 1 and Fig. 7 -- setup effort: industrial flow vs Symbolic QED."""

from repro.eval.effort import EffortModel, setup_effort_table
from repro.eval.report import format_table


def test_bench_table1_setup_effort(benchmark):
    rows = benchmark(setup_effort_table)
    print("\nTable 1 -- setup effort comparison")
    print(format_table(rows, ["technique", "initial", "subsequent"]))
    factors = EffortModel().headline_factors()
    assert factors["initial"] >= 8.0
    assert factors["subsequent"] >= 40.0


def test_bench_fig7_qed_setup_breakdown(benchmark):
    model = EffortModel()
    breakdown = benchmark(model.qed_setup_breakdown)
    print("\nFig. 7 -- Symbolic QED setup effort breakdown (Design A)")
    for activity, effort in breakdown:
        print(f"  {activity:45s} {effort.describe()}")
    total_weeks = sum(item.person_weeks for _, item in breakdown)
    assert abs(total_weeks - 8.0) < 1e-9
