"""Table 2 -- bug detection runtime for Symbolic QED and Single-I."""

from repro.eval.report import runtime_statistics


def test_bench_table2_bug_detection_runtime(benchmark, qed_runtime_samples):
    qed_runs = qed_runtime_samples["qed"]
    single_i_runs = qed_runtime_samples["single_i"]

    def build_rows():
        qed_stats = runtime_statistics(
            result.runtime_seconds for _, result in qed_runs
        )
        single_stats = runtime_statistics(
            result.runtime_seconds for _, result in single_i_runs
        )
        return qed_stats, single_stats

    qed_stats, single_stats = benchmark(build_rows)

    print("\nTable 2 -- bug detection runtime (seconds) [min, avg, max]")
    print(
        "  Symbolic QED with both EDDI-V enhancements: "
        f"[{qed_stats['min']:.1f}, {qed_stats['avg']:.1f}, {qed_stats['max']:.1f}]"
    )
    print(
        "  Single-I:                                   "
        f"[{single_stats['min']:.1f}, {single_stats['avg']:.1f}, {single_stats['max']:.1f}]"
    )
    for label, result in qed_runs:
        print(
            f"    {label:20s} {result.runtime_seconds:6.2f}s  "
            f"violation={result.found_violation}  "
            f"conflicts={result.solver_conflicts}  "
            f"learned={result.learned_clauses}  "
            f"reused={result.learned_clauses_reused}"
        )
    for label, result in single_i_runs:
        print(f"    {label:20s} {result.runtime_seconds:6.2f}s  violation={result.violated}")

    # Shape check (paper: QED 6-12 s, Single-I 6-8 s on a commercial engine):
    # every detection completes in seconds and Single-I is not slower than the
    # full QED runs on average.
    assert all(result.found_violation for _, result in qed_runs)
    assert all(result.violated for _, result in single_i_runs)
    assert single_stats["avg"] <= qed_stats["avg"] * 1.5
