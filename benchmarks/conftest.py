"""Shared fixtures for the benchmark harness.

The expensive measurements (Symbolic QED runs, the detection campaign) are
computed once per session and shared across the per-table/per-figure
benchmarks; each benchmark then times its own reporting step and prints the
regenerated rows so the output can be compared against the paper.
"""

from __future__ import annotations

import os

import pytest

from repro.eval.campaign import CampaignConfig, run_campaign
from repro.indverif.crs import CRSConfig
from repro.isa.arch import TINY_PROFILE
from repro.qed import QEDMode, SingleIChecker, SymbolicQED

#: Bugs exercised by the default (fast) benchmark campaign: one representative
#: per Symbolic QED feature plus the specification bug.  Set REPRO_FULL=1 to
#: run the full 14-bug campaign instead (slow on the pure-Python backend).
REPRESENTATIVE_BUGS = (
    "wrport_collision",
    "consecutive_sub",
    "bz_flag_misread",
    "ldil_after_load",
    "sra_zero_fill",
    "cmpi_carry_spec",
)


def _full_campaign_requested() -> bool:
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false")


@pytest.fixture(scope="session")
def campaign_result():
    """The measured detection campaign shared by the Fig. 8/9/10 benches."""
    config = CampaignConfig(
        arch=TINY_PROFILE,
        bug_ids=None if _full_campaign_requested() else REPRESENTATIVE_BUGS,
        crs_config=CRSConfig(num_programs=25, program_length=22, seed=7),
    )
    return run_campaign(config)


@pytest.fixture(scope="session")
def qed_runtime_samples():
    """Representative Symbolic QED runs used for Tables 2 and 3."""
    runs = []
    specs = [
        ("A.v3", QEDMode.EDDIV, ["LDI", "MOV", "INC", "ADD"], 8, {}),
        ("A.v4", QEDMode.EDDIV_CF, ["LDI", "ADD", "CMPI", "BZ"], 8, {}),
        (
            "A.v5",
            QEDMode.EDDIV_MEM,
            None,
            9,
            {"tracked_registers": (0,)},
        ),
    ]
    for version, mode, focus, bound, extra in specs:
        harness = SymbolicQED(
            version,
            mode=mode,
            arch=TINY_PROFILE,
            focus_opcodes=focus,
            **extra,
        )
        runs.append((f"{version}/{mode.value}", harness.check(max_bound=bound)))

    single_i = []
    for version, instruction in [("A.v6", "SRA"), ("A.v8", "CMPI"), ("B.v4", "ROR")]:
        checker = SingleIChecker(version, arch=TINY_PROFILE)
        single_i.append((f"{version}/{instruction}", checker.check_instruction(instruction)))
    return {"qed": runs, "single_i": single_i}
