"""Ablation -- control-flow bugs escape EDDI-V without the QED-CF module.

Design C version 3 carries only the BEQ-inversion control-flow bug.  Baseline
EDDI-V excludes control-flow instructions from QED sequences, so it cannot
reach the bug; adding the QED-CF module makes the same run fail.  This is the
paper's motivation for the Enhanced EDDI-V control-flow extension.
"""

from repro.isa.arch import TINY_PROFILE
from repro.qed import QEDMode, SymbolicQED

_FOCUS_DATA = ["LDI", "INC", "ADD", "CMPI"]
_FOCUS_CF = _FOCUS_DATA + ["BEQ"]


def test_bench_ablation_baseline_eddiv_misses_cf_bug(benchmark):
    def run():
        harness = SymbolicQED(
            "C.v3",
            mode=QEDMode.EDDIV,
            arch=TINY_PROFILE,
            focus_opcodes=_FOCUS_DATA,
        )
        return harness.check(max_bound=7)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nAblation: baseline EDDI-V on C.v3 -> violation={result.found_violation}")
    assert not result.found_violation


def test_bench_ablation_qed_cf_catches_cf_bug(benchmark):
    def run():
        harness = SymbolicQED(
            "C.v3",
            mode=QEDMode.EDDIV_CF,
            arch=TINY_PROFILE,
            focus_opcodes=_FOCUS_CF,
        )
        return harness.check(max_bound=8)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\nAblation: Enhanced EDDI-V (QED-CF) on C.v3 -> "
        f"violation={result.found_violation} in {result.counterexample_cycles} cycles"
    )
    assert result.found_violation
