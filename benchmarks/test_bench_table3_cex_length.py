"""Table 3 -- counterexample length (cycles and instructions)."""

from repro.eval.report import runtime_statistics


def test_bench_table3_counterexample_length(benchmark, qed_runtime_samples):
    qed_runs = qed_runtime_samples["qed"]
    single_i_runs = qed_runtime_samples["single_i"]

    def build_rows():
        cycles = runtime_statistics(
            result.counterexample_cycles for _, result in qed_runs
        )
        instructions = runtime_statistics(
            result.counterexample_instructions for _, result in qed_runs
        )
        single_cycles = runtime_statistics(
            result.counterexample_cycles for _, result in single_i_runs
        )
        single_instr = runtime_statistics(
            result.counterexample_instructions for _, result in single_i_runs
        )
        return cycles, instructions, single_cycles, single_instr

    cycles, instructions, single_cycles, single_instr = benchmark(build_rows)

    print("\nTable 3 -- counterexample length [min, avg, max]")
    print(
        "  Symbolic QED (both enhancements): cycles "
        f"[{cycles['min']:.0f}, {cycles['avg']:.1f}, {cycles['max']:.0f}]  "
        f"instructions [{instructions['min']:.0f}, {instructions['avg']:.1f}, {instructions['max']:.0f}]"
    )
    print(
        "  Single-I:                         cycles "
        f"[{single_cycles['min']:.0f}, {single_cycles['avg']:.1f}, {single_cycles['max']:.0f}]  "
        f"instructions [{single_instr['min']:.0f}, {single_instr['avg']:.1f}, {single_instr['max']:.0f}]"
    )

    # Shape check against the paper (cycles [5, 7.4, 11], instructions
    # [4, 6.2, 10]; Single-I [2, 2, 2] and [1, 1, 1]): short counterexamples,
    # ten instructions or fewer, Single-I counterexamples of one instruction.
    assert cycles["max"] <= 11
    assert instructions["max"] <= 10
    assert single_instr["min"] == single_instr["max"] == 1
    assert single_cycles["max"] <= 3
