"""Fig. 1 -- the designs and versions analysed in the study."""

from repro.eval.report import design_inventory, format_table


def test_bench_fig1_design_inventory(benchmark):
    rows = benchmark(design_inventory)
    assert len(rows) == 16
    print("\nFig. 1 -- design inventory (16 versions across Designs A, B, C)")
    print(format_table(rows, ["version", "rom_interface", "extension", "bugs_present"]))
